//! The two-phase methodology around the JPG tool (paper §3.1–3.2).
//!
//! **Phase 1** builds the base design: the device is partitioned into
//! floorplanned regions (one per reconfigurable module), each module is
//! implemented *inside its own columns*, the results are merged and a
//! complete bitstream is generated.
//!
//! **Phase 2** re-implements a single module "as a new project": same
//! region constraints, *guided* placement (pads return to the base
//! design's sites so the interface stays put), and the outputs are
//! exactly what JPG consumes — the module's XDL and UCF text.

use bitstream::BitFile;
use cadflow::netlist::Netlist;
use cadflow::{implement, FlowError, FlowOptions, FlowReport};
use jbits::Jbits;
use std::fmt;
use virtex::{ConfigMemory, Device};
use xdl::{Constraints, Design, Rect};

/// One reconfigurable module of the base design.
#[derive(Debug, Clone)]
pub struct ModuleSpec {
    /// Hierarchical prefix, e.g. `"mod1/"`. Must be unique.
    pub prefix: String,
    /// The module's logic.
    pub netlist: Netlist,
    /// Full-height floorplan region (the columns the module owns).
    pub region: Rect,
}

/// Phase-1 output: the implemented base design and its artifacts.
#[derive(Debug, Clone)]
pub struct BaseDesign {
    /// Merged, placed and routed design database.
    pub design: Design,
    /// The floorplan constraints (what the UCF file holds).
    pub constraints: Constraints,
    /// Complete configuration image.
    pub memory: ConfigMemory,
    /// Complete bitstream (`.bit` of the base design).
    pub bitstream: BitFile,
    /// Per-module flow reports, in `ModuleSpec` order.
    pub reports: Vec<FlowReport>,
    /// Module prefixes in Phase-1 order — a module's position also picks
    /// its global clock tree, so Phase-2 variants must reuse it.
    pub module_prefixes: Vec<String>,
}

/// Phase-2 output: one re-implemented module, as JPG sees it.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// XDL text of the module (the `.xdl` file).
    pub xdl: String,
    /// UCF text of the module (the `.ucf` file).
    pub ucf: String,
    /// The design database behind the XDL.
    pub design: Design,
    /// Flow report for the module implementation.
    pub report: FlowReport,
}

/// Workflow failure.
#[derive(Debug)]
pub enum WorkflowError {
    /// A module flow failed.
    Flow {
        /// Module prefix.
        module: String,
        /// Underlying error.
        error: FlowError,
    },
    /// Module translation onto the bitstream failed.
    Translate(crate::translate::TranslateError),
    /// Regions overlap in columns (JPG partials are column-granular).
    OverlappingRegions {
        /// The two offending prefixes.
        modules: (String, String),
    },
    /// The JPG tool rejected a variant while building a library.
    Jpg {
        /// Module prefix.
        module: String,
        /// Error text (JpgError is not `Send`-friendly across rayon).
        message: String,
    },
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Flow { module, error } => {
                write!(f, "module {module:?}: {error}")
            }
            WorkflowError::Translate(e) => write!(f, "translation failed: {e}"),
            WorkflowError::OverlappingRegions { modules } => write!(
                f,
                "regions of {:?} and {:?} share columns",
                modules.0, modules.1
            ),
            WorkflowError::Jpg { module, message } => {
                write!(f, "module {module:?}: {message}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<crate::translate::TranslateError> for WorkflowError {
    fn from(e: crate::translate::TranslateError) -> Self {
        WorkflowError::Translate(e)
    }
}

/// The UCF constraint set for a floorplanned module.
pub fn module_constraints(prefix: &str, region: Rect) -> Constraints {
    let group = format!("AG_{}", prefix.trim_end_matches('/'));
    let text = format!(
        "INST \"{prefix}*\" AREA_GROUP = \"{group}\" ;\nAREA_GROUP \"{group}\" RANGE = {} ;\n",
        region.to_range_string()
    );
    Constraints::parse(&text).expect("generated UCF parses")
}

fn flow_options(seed: u64, region: Rect, clock_index: u8) -> FlowOptions {
    let mut opts = FlowOptions::default();
    opts.place.seed = seed;
    opts.route.seed = seed;
    opts.route.region_cols = Some((region.col0, region.col1));
    opts.route.clock_index = Some(clock_index % virtex::routing::GLOBAL_CLOCKS as u8);
    opts
}

/// Phase 1: implement every module in its region and assemble the base
/// design plus its complete bitstream.
pub fn build_base(
    name: &str,
    device: Device,
    modules: &[ModuleSpec],
    seed: u64,
) -> Result<BaseDesign, WorkflowError> {
    // Column-disjointness check.
    for (i, a) in modules.iter().enumerate() {
        for b in &modules[i + 1..] {
            if a.region.col0 <= b.region.col1 && b.region.col0 <= a.region.col1 {
                return Err(WorkflowError::OverlappingRegions {
                    modules: (a.prefix.clone(), b.prefix.clone()),
                });
            }
        }
    }

    let mut constraints = Constraints::default();
    let mut designs = Vec::new();
    let mut reports = Vec::new();
    for (mi, m) in modules.iter().enumerate() {
        let cons = module_constraints(&m.prefix, m.region);
        constraints.merge(&cons);
        let (d, report) = implement(
            &m.netlist,
            device,
            &cons,
            &m.prefix,
            None,
            &flow_options(seed, m.region, mi as u8),
        )
        .map_err(|error| WorkflowError::Flow {
            module: m.prefix.clone(),
            error,
        })?;
        designs.push(d);
        reports.push(report);
    }
    let refs: Vec<&Design> = designs.iter().collect();
    let design = cadflow::merge_designs(name, device, &refs);

    let mut jb = Jbits::new(device);
    crate::translate::apply_design(&mut jb, &design)?;
    let memory = jb.into_memory();
    let bits = bitstream::full_bitstream(&memory);
    let bitstream = BitFile::new(name, device, false, bits);

    Ok(BaseDesign {
        design,
        constraints,
        memory,
        bitstream,
        reports,
        module_prefixes: modules.iter().map(|m| m.prefix.clone()).collect(),
    })
}

/// Phase 2: re-implement one module against the base design. `prefix`
/// selects the region (it must match one used in Phase 1); placement is
/// guided by the base design so the module interface (its pads) stays on
/// the same sites.
pub fn implement_variant(
    base: &BaseDesign,
    prefix: &str,
    netlist: &Netlist,
    seed: u64,
) -> Result<VariantResult, WorkflowError> {
    let region = base
        .constraints
        .region_for(&format!("{prefix}x"))
        .expect("prefix has a region in the base constraints");
    let cons = module_constraints(prefix, region);
    let clock_index = base
        .module_prefixes
        .iter()
        .position(|p| p == prefix)
        .expect("prefix was part of the Phase-1 base design") as u8;
    let (design, report) = implement(
        netlist,
        base.design.device,
        &cons,
        prefix,
        Some(&base.design),
        &flow_options(seed, region, clock_index),
    )
    .map_err(|error| WorkflowError::Flow {
        module: prefix.to_string(),
        error,
    })?;
    Ok(VariantResult {
        xdl: xdl::print(&design),
        ucf: cons.print(),
        design,
        report,
    })
}

/// Phase 2 at scale: implement a whole catalogue of variants for one
/// region and generate their partial bitstreams — the library the
/// paper's GUI lets the designer pick from ("an opportunity to create
/// multiple partial bitstreams that are selected through a GUI interface
/// and downloaded into the device").
///
/// Variants are independent, so they run in parallel (Rayon).
pub fn build_variant_library(
    base: &BaseDesign,
    prefix: &str,
    variants: &[Netlist],
    seed: u64,
) -> Result<Vec<(String, crate::project::PartialResult)>, WorkflowError> {
    let cat = [RegionCatalogue { prefix, variants }];
    Ok(strip_prefixes(build_library_pipelined(
        base, &cat, seed, false,
    )?))
}

/// [`build_variant_library`], incremental flavour: one [`FrameCache`]
/// (primed with the base image's content) is shared across all variant
/// workers, and each entry is generated with
/// [`crate::project::JpgProject::generate_partial_incremental`] — only
/// frames whose content differs from the base are emitted, found through
/// the translation's dirty-frame byproduct plus a base-content compare
/// instead of a full-memory diff per variant.
///
/// Library entries built this way apply correctly when the module region
/// holds **base content**; to swap one variant directly for another, use
/// the wholesale [`build_variant_library`].
///
/// [`FrameCache`]: crate::cache::FrameCache
pub fn build_variant_library_incremental(
    base: &BaseDesign,
    prefix: &str,
    variants: &[Netlist],
    seed: u64,
) -> Result<Vec<(String, crate::project::PartialResult)>, WorkflowError> {
    let cat = [RegionCatalogue { prefix, variants }];
    Ok(strip_prefixes(build_library_pipelined(
        base, &cat, seed, true,
    )?))
}

fn strip_prefixes(
    entries: Vec<(String, String, crate::project::PartialResult)>,
) -> Vec<(String, crate::project::PartialResult)> {
    entries
        .into_iter()
        .map(|(_, name, partial)| (name, partial))
        .collect()
}

/// One region's variant catalogue for [`build_library_pipelined`].
#[derive(Debug, Clone, Copy)]
pub struct RegionCatalogue<'a> {
    /// Module prefix (must match a Phase-1 region).
    pub prefix: &'a str,
    /// The variants to implement for that region.
    pub variants: &'a [Netlist],
}

/// Build variant libraries for *several* regions as one flattened
/// parallel job set — cross-variant pipeline parallelism. Every
/// `(region, variant)` pair becomes an independent work item, so a
/// worker can be translating one region's variant while another
/// diffs/generates a different region's: the stage mix overlaps across
/// the whole catalogue instead of fanning out one region at a time with
/// a barrier between regions.
///
/// With `incremental`, one shared [`FrameCache`] is primed over every
/// catalogue region up front and all workers decide emission sets
/// against it (see [`build_variant_library_incremental`] for the
/// applicability caveat). Entries come back as
/// `(prefix, variant name, partial)` in catalogue order; per-variant
/// seeds match the single-region builders, so outputs are byte-identical
/// to building each region separately.
///
/// [`FrameCache`]: crate::cache::FrameCache
pub fn build_library_pipelined(
    base: &BaseDesign,
    catalogues: &[RegionCatalogue<'_>],
    seed: u64,
    incremental: bool,
) -> Result<Vec<(String, String, crate::project::PartialResult)>, WorkflowError> {
    use rayon::prelude::*;
    let project = crate::project::JpgProject::from_memory("library", base.memory.clone());
    // A variant's dirty frames all lie in its module's region columns or
    // the IOB edge columns (the pad frames of its ports), so only those
    // need base content — any other frame would miss and be emitted,
    // which never happens here and would be harmless if it did.
    let cache = incremental.then(|| {
        let cache = crate::cache::FrameCache::new();
        for cat in catalogues {
            cache.prime_frames(
                &base.memory,
                region_frames(&base.memory, region_of(base, cat.prefix)),
            );
        }
        cache
    });
    // One constraint build per region, shared by its jobs — per-variant
    // reparsing would tax the single-worker degenerate case for nothing.
    let region_cons: Vec<Constraints> = catalogues
        .iter()
        .map(|cat| module_constraints(cat.prefix, region_of(base, cat.prefix)))
        .collect();
    let jobs: Vec<(&str, &Constraints, usize, &Netlist)> = catalogues
        .iter()
        .zip(&region_cons)
        .flat_map(|(cat, cons)| {
            cat.variants
                .iter()
                .enumerate()
                .map(move |(i, nl)| (cat.prefix, cons, i, nl))
        })
        .collect();
    jobs.par_iter()
        .map(|&(prefix, cons, i, nl)| {
            let v = implement_variant(base, prefix, nl, seed ^ ((i as u64) << 8))?;
            let partial = match &cache {
                Some(cache) => project.generate_partial_incremental(&v.design, cons, cache),
                None => project.generate_partial_from(&v.design, cons),
            }
            .map_err(|e| WorkflowError::Jpg {
                module: prefix.to_string(),
                message: e.to_string(),
            })?;
            Ok((prefix.to_string(), nl.name.clone(), partial))
        })
        .collect()
}

fn region_of(base: &BaseDesign, prefix: &str) -> Rect {
    base.constraints
        .region_for(&format!("{prefix}x"))
        .expect("prefix has a region")
}

/// Frame ranges of `region`'s CLB columns plus the two IOB edge columns
/// — every frame a partial for a module floorplanned in `region` can
/// write (mirrors the column set `stamp_module` derives). One range per
/// configuration column, in `region` column order then edge columns.
/// Public plumbing for region-scoped consumers (the `fleet` service's
/// store and readback verifier).
pub fn region_frame_ranges(mem: &ConfigMemory, region: Rect) -> Vec<bitstream::FrameRange> {
    use bitstream::FrameRange;
    use virtex::BlockType;
    let geom = mem.geometry();
    let iob_right_major = mem.device().geometry().clb_cols as u8 + 1;
    region
        .cols()
        .filter_map(|c| geom.major_for_clb_col(c))
        .chain([iob_right_major, iob_right_major + 1])
        .filter_map(|major| FrameRange::for_column(geom, BlockType::Clb, major))
        .collect()
}

/// Linear frame indices behind [`region_frame_ranges`].
fn region_frames(mem: &ConfigMemory, region: Rect) -> Vec<usize> {
    region_frame_ranges(mem, region)
        .into_iter()
        .flat_map(|r| r.frames())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadflow::gen;

    fn region(c0: i32, c1: i32) -> Rect {
        Rect::new(0, c0, 15, c1) // full height of an XCV50
    }

    fn two_module_base() -> BaseDesign {
        let modules = vec![
            ModuleSpec {
                prefix: "mod1/".into(),
                netlist: gen::counter("up", 3),
                region: region(1, 8),
            },
            ModuleSpec {
                prefix: "mod2/".into(),
                netlist: gen::parity("par", 6),
                region: region(12, 19),
            },
        ];
        build_base("base", Device::XCV50, &modules, 42).unwrap()
    }

    #[test]
    fn base_design_is_complete_and_loadable() {
        let base = two_module_base();
        assert!(base.design.fully_placed());
        assert!(base.design.fully_routed());
        cadflow::verify_routing(&base.design).unwrap();
        // The bitstream loads back into the same image.
        let mut dev = bitstream::Interpreter::new(Device::XCV50);
        dev.feed(&base.bitstream.bitstream).unwrap();
        assert_eq!(dev.memory(), &base.memory);
    }

    #[test]
    fn module_bits_stay_in_their_columns() {
        let base = two_module_base();
        // Every occupied slice of mod1 is in columns 1..=8, and mod2 in
        // 12..=19.
        for (inst, s) in base.design.occupied_slices() {
            if inst.name.starts_with("mod1/") {
                assert!((1..=8).contains(&s.tile.col), "{}", inst.name);
            } else {
                assert!((12..=19).contains(&s.tile.col), "{}", inst.name);
            }
        }
        // Routed pips too.
        for net in &base.design.nets {
            let range = if net.name.starts_with("mod1/") {
                1..=8
            } else {
                12..=19
            };
            for pip in &net.pips {
                assert!(
                    range.contains(&pip.loc.col),
                    "net {} pip {} outside region",
                    net.name,
                    pip
                );
            }
        }
    }

    #[test]
    fn variant_library_builds_in_parallel() {
        let base = two_module_base();
        let variants = vec![
            gen::counter("up", 3),
            gen::down_counter("down", 3),
            gen::gray_counter("gray", 3),
        ];
        let lib = build_variant_library(&base, "mod1/", &variants, 7).unwrap();
        assert_eq!(lib.len(), 3);
        let full = base.bitstream.bitstream.byte_len();
        for (name, partial) in &lib {
            assert!(!name.is_empty());
            assert!(partial.bitstream.byte_len() < full / 2);
            // Every library entry applies cleanly on the base.
            let mut dev = bitstream::Interpreter::new(Device::XCV50);
            dev.feed(&base.bitstream.bitstream).unwrap();
            dev.feed(&partial.bitstream).unwrap();
            assert_eq!(dev.memory(), &partial.memory, "library entry {name}");
        }
    }

    #[test]
    fn pipelined_library_matches_per_region_builds() {
        let base = two_module_base();
        let mod1 = vec![gen::counter("up", 3), gen::gray_counter("gray", 3)];
        let mod2 = vec![gen::parity("par", 6), gen::parity("par2", 4)];
        let cats = [
            RegionCatalogue {
                prefix: "mod1/",
                variants: &mod1,
            },
            RegionCatalogue {
                prefix: "mod2/",
                variants: &mod2,
            },
        ];
        for incremental in [false, true] {
            let pipelined = build_library_pipelined(&base, &cats, 7, incremental).unwrap();
            assert_eq!(pipelined.len(), 4);
            let build_one = |prefix: &str, variants: &[Netlist]| {
                if incremental {
                    build_variant_library_incremental(&base, prefix, variants, 7).unwrap()
                } else {
                    build_variant_library(&base, prefix, variants, 7).unwrap()
                }
            };
            let mut expected = Vec::new();
            expected.extend(
                build_one("mod1/", &mod1)
                    .into_iter()
                    .map(|(n, p)| ("mod1/", n, p)),
            );
            expected.extend(
                build_one("mod2/", &mod2)
                    .into_iter()
                    .map(|(n, p)| ("mod2/", n, p)),
            );
            for ((gp, gn, got), (ep, en, want)) in pipelined.iter().zip(&expected) {
                assert_eq!((gp.as_str(), gn.as_str()), (*ep, en.as_str()));
                assert_eq!(
                    got.bitstream.to_bytes(),
                    want.bitstream.to_bytes(),
                    "{gp}{gn} diverged (incremental={incremental})"
                );
            }
        }
    }

    #[test]
    fn overlapping_regions_rejected() {
        let modules = vec![
            ModuleSpec {
                prefix: "a/".into(),
                netlist: gen::counter("up", 2),
                region: region(0, 8),
            },
            ModuleSpec {
                prefix: "b/".into(),
                netlist: gen::counter("up", 2),
                region: region(8, 15),
            },
        ];
        let err = build_base("x", Device::XCV50, &modules, 1).unwrap_err();
        assert!(matches!(err, WorkflowError::OverlappingRegions { .. }));
    }

    #[test]
    fn variant_keeps_pads_on_base_sites() {
        let base = two_module_base();
        let variant = implement_variant(&base, "mod1/", &gen::down_counter("down", 3), 7).unwrap();
        // Interface instances (ports) share names with the base and must
        // sit on identical sites.
        for (inst, io) in variant.design.occupied_iobs() {
            let base_inst = base
                .design
                .instance(&inst.name)
                .expect("interface instance exists in base");
            assert_eq!(
                base_inst.placement,
                xdl::Placement::Iob(io),
                "pad {} moved",
                inst.name
            );
        }
        // And the XDL/UCF text round-trips.
        let reparsed = xdl::parse(&variant.xdl).unwrap();
        assert_eq!(reparsed, variant.design);
        assert!(Constraints::parse(&variant.ucf).is_ok());
    }
}
