//! # jpg — the JPG partial bitstream generation tool
//!
//! The Rust reproduction of the paper's contribution: a tool that sits at
//! the end of the standard CAD flow and turns a re-implemented module's
//! **XDL + UCF** files into a **partial bitstream** for a Virtex device,
//! by parsing the XDL records and issuing JBits calls (paper §3).
//!
//! * [`translate`] — the XDL parser-to-JBits translator (§3.2.2): walks
//!   `inst` cfg strings and `net` pip lists, making `set_lut`/`set`/
//!   `set_pip` calls;
//! * [`project`] — the [`JpgProject`] tool model (§3.3): open a base
//!   design's complete bitstream, feed in module XDL/UCF, preview the
//!   floorplanned target area, then either emit the partial bitstream or
//!   write it onto the base design (the paper's two options), or push it
//!   straight to a board over XHWIF;
//! * [`floorplan`] — the ASCII rendering of the device floorplan (the
//!   paper's Figure-3 GUI view);
//! * [`workflow`] — the two-phase methodology around the tool (§3.1,
//!   §3.2): Phase 1 builds the floorplanned base design, Phase 2
//!   re-implements single modules with guided placement and hands their
//!   XDL/UCF to JPG.
//!
//! ```
//! use cadflow::gen;
//! use jpg::workflow::{build_base, implement_variant, ModuleSpec};
//! use jpg::JpgProject;
//! use virtex::Device;
//! use xdl::Rect;
//!
//! // Phase 1: a base design with one reconfigurable region.
//! let modules = vec![ModuleSpec {
//!     prefix: "mod1/".into(),
//!     netlist: gen::counter("up", 2),
//!     region: Rect::new(0, 2, 15, 9),
//! }];
//! let base = build_base("base", Device::XCV50, &modules, 1).unwrap();
//!
//! // Phase 2: an alternative implementation of the module.
//! let variant = implement_variant(
//!     &base, "mod1/", &gen::down_counter("down", 2), 1,
//! ).unwrap();
//!
//! // JPG: XDL + UCF in, partial bitstream out.
//! let mut project = JpgProject::open(base.bitstream.clone()).unwrap();
//! let partial = project
//!     .generate_partial(&variant.xdl, &variant.ucf)
//!     .unwrap();
//! // An 8-of-24-column region yields a partial roughly a third of the
//! // complete bitstream — the paper's headline ratio.
//! assert!(partial.bitstream.byte_len() < base.bitstream.bitstream.byte_len() / 2);
//! ```

pub mod cache;
pub mod floorplan;
pub mod project;
pub mod report;
pub mod translate;
pub mod workflow;

pub use cache::{frame_hash, FrameCache, FrameKey};
pub use floorplan::render_floorplan;
pub use project::{JpgError, JpgProject, PartialResult};
pub use translate::{apply_design, TranslateError, TranslateStats};
pub use workflow::region_frame_ranges;
