//! Device-edge boundary regressions: frame addressing at the first and
//! last frames, `region_frame_ranges` at the leftmost/rightmost CLB
//! columns, pad-frame behaviour when a write run ends on the device's
//! final frame, and the last BRAM content column — on the smallest
//! (XCV50) and largest (XCV1000) devices the harness fuzzes over.

use bitstream::{partial_bitstream, FrameRange, Interpreter};
use jpg::region_frame_ranges;
use virtex::{BlockType, ConfigMemory, Device, FrameAddress};
use xdl::Rect;

fn full_height_region(d: Device, c0: i32, c1: i32) -> Rect {
    let rows = d.geometry().clb_rows as i32;
    Rect::new(0, c0, rows - 1, c1)
}

#[test]
fn frame_address_roundtrips_at_device_extremes() {
    for d in [Device::XCV50, Device::XCV1000] {
        let geom = ConfigMemory::new(d).geometry().clone();
        let total = geom.total_frames();
        for idx in [0, 1, total - 2, total - 1] {
            let far = geom.frame_address(idx).expect("in range");
            assert_eq!(geom.frame_index(far), Some(idx), "{d:?} frame {idx}");
            // And through the 32-bit FAR encoding the stream carries.
            let word = far.to_word();
            assert_eq!(FrameAddress::from_word(word), Some(far), "{d:?} {idx}");
        }
        assert_eq!(geom.frame_address(total), None, "one past the end");
    }
}

#[test]
fn region_ranges_at_column_zero_and_rightmost_column() {
    for d in [Device::XCV50, Device::XCV1000] {
        let mem = ConfigMemory::new(d);
        let geom = mem.geometry();
        let last_col = d.geometry().clb_cols - 1;

        for col in [0usize, last_col] {
            let region = full_height_region(d, col as i32, col as i32);
            let ranges = region_frame_ranges(&mem, region);
            // One CLB column plus the two IOB edge columns.
            assert_eq!(ranges.len(), 3, "{d:?} col {col}");
            for r in &ranges {
                assert!(r.valid_for(geom), "{d:?} col {col}: {r:?}");
            }
            let major = geom.major_for_clb_col(col).unwrap();
            let expect = FrameRange::for_column(geom, BlockType::Clb, major).unwrap();
            assert_eq!(ranges[0], expect, "{d:?} col {col}");
        }
    }
}

#[test]
fn region_touching_iob_ring_does_not_wrap() {
    // Columns -1/-2 are the IOB ring; before the `Rect::cols` fix they
    // wrapped to huge usize values and the column walk started at
    // usize::MAX.
    let mem = ConfigMemory::new(Device::XCV50);
    let region = full_height_region(Device::XCV50, -1, 1);
    let ranges = region_frame_ranges(&mem, region);
    // CLB columns 0 and 1 plus the two IOB edge columns.
    assert_eq!(ranges.len(), 4);
    let geom = mem.geometry();
    for r in &ranges {
        assert!(r.valid_for(geom));
    }
}

#[test]
fn rightmost_clb_and_iob_majors_are_distinct_columns() {
    for d in [Device::XCV50, Device::XCV1000] {
        let mem = ConfigMemory::new(d);
        let geom = mem.geometry();
        let clb_cols = d.geometry().clb_cols;
        let last_major = geom.major_for_clb_col(clb_cols - 1).unwrap();
        let iob_right = clb_cols as u8 + 1;
        let iob_left = clb_cols as u8 + 2;
        let a = FrameRange::for_column(geom, BlockType::Clb, last_major).unwrap();
        let b = FrameRange::for_column(geom, BlockType::Clb, iob_right).unwrap();
        let c = FrameRange::for_column(geom, BlockType::Clb, iob_left).unwrap();
        for (x, y) in [(a, b), (a, c), (b, c)] {
            assert!(
                x.frames().all(|f| !y.frames().contains(&f)),
                "{d:?}: columns overlap"
            );
        }
        // No CLB-space major beyond the IOB columns.
        assert!(FrameRange::for_column(geom, BlockType::Clb, iob_left + 1).is_none());
    }
}

#[test]
fn write_run_ending_on_last_device_frame_commits_cleanly() {
    // The pipeline pad frame of an FDRI run targeting the final frame
    // must not be counted against the device bounds.
    for d in [Device::XCV50, Device::XCV1000] {
        let mut mem = ConfigMemory::new(d);
        let total = mem.frame_count();
        mem.frame_mut(total - 1)[0] = 0xDEAD_0001;
        mem.frame_mut(total - 2)[1] = 0xDEAD_0002;
        let partial = partial_bitstream(&mem, &[FrameRange::new(total - 2, 2)]);
        let mut dev = Interpreter::new(d);
        dev.feed(&partial).expect("last-frame run decodes");
        assert_eq!(dev.memory(), &mem, "{d:?}");
    }
}

#[test]
fn last_bram_content_column_covers_the_device_tail() {
    for d in [Device::XCV50, Device::XCV1000] {
        let mem = ConfigMemory::new(d);
        let geom = mem.geometry();
        // BRAM content majors: 0 = right column, 1 = left column; the
        // left one is the last column in linear frame order.
        let right = FrameRange::for_column(geom, BlockType::BramContent, 0).unwrap();
        let left = FrameRange::for_column(geom, BlockType::BramContent, 1).unwrap();
        let content_frames = virtex::config::BRAM_CONTENT_FRAMES;
        assert_eq!(right.len, content_frames, "{d:?}");
        assert_eq!(left.len, content_frames, "{d:?}");
        let tail = right.start.max(left.start);
        assert_eq!(
            tail + content_frames,
            geom.total_frames(),
            "{d:?}: a BRAM content column ends the frame sequence"
        );
        assert!(FrameRange::for_column(geom, BlockType::BramContent, 2).is_none());
    }
}
