//! Device family table: the nine members of the original Virtex (XCV) line.
//!
//! Geometry figures (CLB rows × columns) follow the Virtex 2.5 V data sheet.
//! Each CLB holds two slices; each slice holds two 4-input LUTs and two
//! flip-flops, so a device has `rows * cols * 4` LUT/FF pairs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A member of the Virtex (XCV) device family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Device {
    XCV50,
    XCV100,
    XCV150,
    XCV200,
    XCV300,
    XCV400,
    XCV600,
    XCV800,
    XCV1000,
}

/// Static geometry of one device: the logic-fabric dimensions from which all
/// configuration sizes are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of CLB rows in the array.
    pub clb_rows: usize,
    /// Number of CLB columns in the array.
    pub clb_cols: usize,
    /// Block-RAM columns per side of the die (Virtex has one column of
    /// 4-kbit BRAMs down each of the left and right edges).
    pub bram_cols_per_side: usize,
    /// BRAM cells in one BRAM column (one per 4 CLB rows).
    pub brams_per_col: usize,
    /// User I/O pads along each edge of the die.
    pub iobs_per_edge: usize,
}

impl Device {
    /// All devices, smallest first. Useful for parameter sweeps.
    pub const ALL: [Device; 9] = [
        Device::XCV50,
        Device::XCV100,
        Device::XCV150,
        Device::XCV200,
        Device::XCV300,
        Device::XCV400,
        Device::XCV600,
        Device::XCV800,
        Device::XCV1000,
    ];

    /// Logic-fabric geometry for this device.
    pub fn geometry(self) -> Geometry {
        let (clb_rows, clb_cols) = match self {
            Device::XCV50 => (16, 24),
            Device::XCV100 => (20, 30),
            Device::XCV150 => (24, 36),
            Device::XCV200 => (28, 42),
            Device::XCV300 => (32, 48),
            Device::XCV400 => (40, 60),
            Device::XCV600 => (48, 72),
            Device::XCV800 => (56, 84),
            Device::XCV1000 => (64, 96),
        };
        Geometry {
            clb_rows,
            clb_cols,
            bram_cols_per_side: 1,
            brams_per_col: clb_rows / 4,
            iobs_per_edge: clb_cols * 2,
        }
    }

    /// JTAG/configuration IDCODE for the device (model-stable synthetic
    /// values in the Xilinx numbering style).
    pub fn idcode(self) -> u32 {
        match self {
            Device::XCV50 => 0x0061_0093,
            Device::XCV100 => 0x0061_4093,
            Device::XCV150 => 0x0061_8093,
            Device::XCV200 => 0x0061_C093,
            Device::XCV300 => 0x0062_0093,
            Device::XCV400 => 0x0062_8093,
            Device::XCV600 => 0x0063_0093,
            Device::XCV800 => 0x0063_8093,
            Device::XCV1000 => 0x0064_0093,
        }
    }

    /// Look a device up by IDCODE.
    pub fn from_idcode(idcode: u32) -> Option<Device> {
        Device::ALL.into_iter().find(|d| d.idcode() == idcode)
    }

    /// Marketing name, e.g. `"XCV100"`.
    pub fn name(self) -> &'static str {
        match self {
            Device::XCV50 => "XCV50",
            Device::XCV100 => "XCV100",
            Device::XCV150 => "XCV150",
            Device::XCV200 => "XCV200",
            Device::XCV300 => "XCV300",
            Device::XCV400 => "XCV400",
            Device::XCV600 => "XCV600",
            Device::XCV800 => "XCV800",
            Device::XCV1000 => "XCV1000",
        }
    }

    /// Total slices (2 per CLB).
    pub fn slice_count(self) -> usize {
        let g = self.geometry();
        g.clb_rows * g.clb_cols * 2
    }

    /// Total 4-input LUTs (2 per slice).
    pub fn lut_count(self) -> usize {
        self.slice_count() * 2
    }

    /// Configuration geometry (columns, frames, frame length) for this
    /// device. Convenience for [`crate::ConfigGeometry::for_device`].
    pub fn config_geometry(self) -> crate::ConfigGeometry {
        crate::ConfigGeometry::for_device(self)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown device name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDevice(pub String);

impl fmt::Display for UnknownDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown Virtex device: {:?}", self.0)
    }
}

impl std::error::Error for UnknownDevice {}

impl FromStr for Device {
    type Err = UnknownDevice;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.to_ascii_uppercase();
        // Accept both plain names and package-qualified names such as
        // "XCV100-4BG256" as they appear in UCF/XDL files.
        let base = up.split('-').next().unwrap_or(&up);
        Device::ALL
            .into_iter()
            .find(|d| d.name() == base)
            .ok_or_else(|| UnknownDevice(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_monotonic_in_device_size() {
        let mut prev = 0;
        for d in Device::ALL {
            let g = d.geometry();
            let cells = g.clb_rows * g.clb_cols;
            assert!(cells > prev, "{d} should be larger than its predecessor");
            prev = cells;
        }
    }

    #[test]
    fn xcv1000_has_one_million_gate_scale_fabric() {
        let g = Device::XCV1000.geometry();
        assert_eq!(g.clb_rows, 64);
        assert_eq!(g.clb_cols, 96);
        assert_eq!(Device::XCV1000.lut_count(), 64 * 96 * 4);
    }

    #[test]
    fn idcodes_are_unique_and_roundtrip() {
        for d in Device::ALL {
            assert_eq!(Device::from_idcode(d.idcode()), Some(d));
        }
        let mut codes: Vec<u32> = Device::ALL.iter().map(|d| d.idcode()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Device::ALL.len());
    }

    #[test]
    fn parse_accepts_package_suffix_and_case() {
        assert_eq!("xcv100".parse::<Device>().unwrap(), Device::XCV100);
        assert_eq!("XCV300-4BG432".parse::<Device>().unwrap(), Device::XCV300);
        assert!("XCV999".parse::<Device>().is_err());
    }

    #[test]
    fn brams_scale_with_rows() {
        assert_eq!(Device::XCV50.geometry().brams_per_col, 4);
        assert_eq!(Device::XCV1000.geometry().brams_per_col, 16);
    }
}
