//! Block RAM: the 4-kbit dual-port memories along the left and right
//! edges of a Virtex die, and the layout of their *content* in the
//! configuration memory.
//!
//! BRAM content lives in its own configuration block type
//! ([`crate::BlockType::BramContent`], 64 frames per column), so
//! rewriting a coefficient table is itself a partial reconfiguration —
//! the mechanism behind the "self-reconfigurable on-chip memory" systems
//! contemporaneous with JPG.
//!
//! Layout: BRAM `i` on a side occupies the four CLB-row slots
//! `4i..4i+4`. Content bit `b` (0..4096) maps to minor `b % 64` at
//! bit `row_bit_offset(4i) + b / 64` — 64 bits per frame per BRAM,
//! filling 64 of its 72 available frame bits.

use crate::config::{BlockType, ConfigGeometry};
use crate::family::Device;
use serde::{Deserialize, Serialize};
use std::fmt;

pub use crate::config::Side;

/// Content bits per BRAM cell.
pub const BRAM_BITS: usize = 4096;

/// A block-RAM site: side of the die plus index from the top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BramCoord {
    /// Left or right content column.
    pub side: Side,
    /// Index from the top (`0..geometry().brams_per_col`).
    pub index: usize,
}

impl BramCoord {
    /// Construct a BRAM coordinate.
    pub fn new(side: Side, index: usize) -> Self {
        BramCoord { side, index }
    }

    /// Whether this site exists on `device`.
    pub fn valid_for(&self, device: Device) -> bool {
        self.index < device.geometry().brams_per_col
    }

    /// Site name, e.g. `RAMB4_R2C0` (left column = C0, right = C1).
    pub fn site_name(&self) -> String {
        let c = match self.side {
            Side::Left => 0,
            Side::Right => 1,
        };
        format!("RAMB4_R{}C{}", self.index + 1, c)
    }

    /// Parse a site name produced by [`Self::site_name`].
    pub fn parse_site_name(s: &str) -> Option<BramCoord> {
        let s = s.strip_prefix("RAMB4_R")?;
        let (r, c) = s.split_once('C')?;
        let index = r.parse::<usize>().ok()?.checked_sub(1)?;
        let side = match c {
            "0" => Side::Left,
            "1" => Side::Right,
            _ => return None,
        };
        Some(BramCoord { side, index })
    }
}

impl fmt::Display for BramCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.site_name())
    }
}

/// Position of content bit `bit` of `bram`:
/// `(linear frame index, bit within frame)`.
pub fn content_bit_pos(
    geom: &ConfigGeometry,
    bram: BramCoord,
    bit: usize,
) -> Option<(usize, usize)> {
    if bit >= BRAM_BITS || !bram.valid_for(geom.device()) {
        return None;
    }
    // Content-column majors: right = 0, left = 1 (construction order in
    // ConfigGeometry).
    let major = match bram.side {
        Side::Right => 0,
        Side::Left => 1,
    };
    let col = geom.column(BlockType::BramContent, major)?;
    let minor = bit % 64;
    let frame = col.first_frame_index() + minor;
    let frame_bit = geom.row_bit_offset(4 * bram.index) + bit / 64;
    Some((frame, frame_bit))
}

/// Iterate all BRAM sites of `device`.
pub fn bram_sites(device: Device) -> impl Iterator<Item = BramCoord> {
    let n = device.geometry().brams_per_col;
    [Side::Right, Side::Left]
        .into_iter()
        .flat_map(move |side| (0..n).map(move |index| BramCoord { side, index }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_name_roundtrip() {
        for b in bram_sites(Device::XCV100) {
            assert_eq!(BramCoord::parse_site_name(&b.site_name()), Some(b));
        }
        assert_eq!(BramCoord::parse_site_name("RAMB4_R0C0"), None);
        assert_eq!(BramCoord::parse_site_name("RAMB4_R1C2"), None);
        assert_eq!(BramCoord::parse_site_name("CLB_R1C1.S0"), None);
    }

    #[test]
    fn census_matches_geometry() {
        assert_eq!(bram_sites(Device::XCV50).count(), 2 * 4);
        assert_eq!(bram_sites(Device::XCV1000).count(), 2 * 16);
        assert!(BramCoord::new(Side::Left, 3).valid_for(Device::XCV50));
        assert!(!BramCoord::new(Side::Left, 4).valid_for(Device::XCV50));
    }

    #[test]
    fn content_bits_are_unique_and_in_content_columns() {
        let geom = ConfigGeometry::for_device(Device::XCV50);
        let mut seen = std::collections::HashSet::new();
        for bram in bram_sites(Device::XCV50) {
            for bit in (0..BRAM_BITS).step_by(17) {
                let (frame, fb) = content_bit_pos(&geom, bram, bit).expect("pos");
                assert!(seen.insert((frame, fb)), "collision at {bram} bit {bit}");
                let far = geom.frame_address(frame).unwrap();
                assert_eq!(far.block, BlockType::BramContent);
                assert!(fb < geom.frame_bits());
            }
        }
        // Out-of-range rejected.
        assert_eq!(
            content_bit_pos(&geom, BramCoord::new(Side::Left, 0), BRAM_BITS),
            None
        );
        assert_eq!(
            content_bit_pos(&geom, BramCoord::new(Side::Left, 99), 0),
            None
        );
    }
}
