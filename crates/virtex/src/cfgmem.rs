//! The configuration memory image: every frame of a device as addressable
//! words and bits.
//!
//! `ConfigMemory` is the in-memory mirror of a configured device that both
//! `bitgen` (writing) and readback (reading) operate on, and the substrate
//! under the JBits-style resource API.

use crate::config::{ConfigGeometry, FrameAddress};
use crate::family::Device;
use serde::{Deserialize, Serialize};

/// A full configuration-memory image for one device.
///
/// Besides the raw words, the image keeps a per-frame *dirty* bitset: a
/// frame is marked the moment any write changes its content (or hands out
/// a mutable view of it). Partial-bitstream generation reads this set to
/// know which frames to compare/emit without scanning the whole device.
///
/// The dirty set is bookkeeping, not content: it is ignored by
/// `PartialEq`, and a write that stores the value already present does not
/// mark the frame. Because marks are never un-done by later writes, the
/// set is a *superset* of a content diff against the state at the last
/// [`ConfigMemory::clear_dirty`] (writing a bit and writing it back leaves
/// the frame marked).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigMemory {
    geometry: ConfigGeometry,
    /// `total_frames * frame_words` words, frame-major.
    words: Vec<u32>,
    /// One bit per frame: set when the frame was touched since the last
    /// `clear_dirty`. Excluded from equality.
    dirty: Vec<u64>,
}

impl PartialEq for ConfigMemory {
    fn eq(&self, other: &Self) -> bool {
        // Dirty bits are provenance, not content: two images with the same
        // words are the same configuration regardless of write history.
        self.geometry == other.geometry && self.words == other.words
    }
}

impl Eq for ConfigMemory {}

impl ConfigMemory {
    /// An all-zero (erased) configuration for `device`.
    pub fn new(device: Device) -> Self {
        let geometry = ConfigGeometry::for_device(device);
        let words = vec![0; geometry.total_words()];
        let dirty = vec![0; geometry.total_frames().div_ceil(64)];
        ConfigMemory {
            geometry,
            words,
            dirty,
        }
    }

    /// The device this image configures.
    pub fn device(&self) -> Device {
        self.geometry.device()
    }

    /// The configuration geometry.
    pub fn geometry(&self) -> &ConfigGeometry {
        &self.geometry
    }

    /// Frame length in words.
    pub fn frame_words(&self) -> usize {
        self.geometry.frame_words()
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.geometry.total_frames()
    }

    /// Read-only view of frame `idx` (linear index).
    pub fn frame(&self, idx: usize) -> &[u32] {
        let fw = self.frame_words();
        &self.words[idx * fw..(idx + 1) * fw]
    }

    /// Mutable view of frame `idx`. Conservatively marks the frame dirty:
    /// the caller may write anything through the returned slice.
    pub fn frame_mut(&mut self, idx: usize) -> &mut [u32] {
        self.mark_frame_dirty(idx);
        let fw = self.frame_words();
        &mut self.words[idx * fw..(idx + 1) * fw]
    }

    /// Read-only view of the frame at `far`, if the address is valid.
    pub fn frame_at(&self, far: FrameAddress) -> Option<&[u32]> {
        self.geometry.frame_index(far).map(|i| self.frame(i))
    }

    /// Overwrite the frame at `far` with `data` (must be exactly one frame
    /// long). Returns `false` when the address is invalid.
    pub fn write_frame(&mut self, far: FrameAddress, data: &[u32]) -> bool {
        assert_eq!(data.len(), self.frame_words(), "frame length mismatch");
        match self.geometry.frame_index(far) {
            Some(i) => {
                if self.frame(i) != data {
                    self.mark_frame_dirty(i);
                    let fw = self.frame_words();
                    self.words[i * fw..(i + 1) * fw].copy_from_slice(data);
                }
                true
            }
            None => false,
        }
    }

    /// Zero linear frame `idx`, marking it dirty only if it actually held
    /// content — the erase primitive for module stamping, which keeps the
    /// dirty byproduct close to the true content diff on mostly-empty
    /// fabric.
    pub fn clear_frame(&mut self, idx: usize) {
        if self.frame(idx).iter().any(|&w| w != 0) {
            self.mark_frame_dirty(idx);
            let fw = self.frame_words();
            self.words[idx * fw..(idx + 1) * fw].fill(0);
        }
    }

    /// Get a single configuration bit. `bit` addresses the frame's bit
    /// space, MSB-free: bit `b` lives in word `b / 32`, position `b % 32`.
    pub fn get_bit(&self, frame: usize, bit: usize) -> bool {
        let w = self.frame(frame)[bit / 32];
        (w >> (bit % 32)) & 1 == 1
    }

    /// Set a single configuration bit. Marks the frame dirty only when the
    /// stored value actually changes.
    pub fn set_bit(&mut self, frame: usize, bit: usize, value: bool) {
        let fw = self.frame_words();
        let word = &mut self.words[frame * fw + bit / 32];
        let mask = 1u32 << (bit % 32);
        let next = if value { *word | mask } else { *word & !mask };
        if next != *word {
            *word = next;
            self.mark_frame_dirty(frame);
        }
    }

    /// Read a little-endian field of `width <= 32` bits starting at
    /// (`frame`, `bit`), staying within the frame.
    pub fn get_field(&self, frame: usize, bit: usize, width: usize) -> u32 {
        debug_assert!(width <= 32);
        let mut v = 0u32;
        for i in 0..width {
            if self.get_bit(frame, bit + i) {
                v |= 1 << i;
            }
        }
        v
    }

    /// Write a little-endian field of `width <= 32` bits.
    pub fn set_field(&mut self, frame: usize, bit: usize, width: usize, value: u32) {
        debug_assert!(width <= 32);
        for i in 0..width {
            self.set_bit(frame, bit + i, (value >> i) & 1 == 1);
        }
    }

    /// Linear indices of frames that differ between `self` and `other`
    /// (same device required).
    pub fn diff_frames(&self, other: &ConfigMemory) -> Vec<usize> {
        assert_eq!(self.device(), other.device(), "diff across devices");
        (0..self.frame_count())
            .filter(|&i| self.frame(i) != other.frame(i))
            .collect()
    }

    /// The whole image as a flat word slice (frame-major).
    pub fn as_words(&self) -> &[u32] {
        &self.words
    }

    /// Replace the whole image from a flat word slice. Marks exactly the
    /// frames whose content changes.
    pub fn load_words(&mut self, words: &[u32]) {
        assert_eq!(words.len(), self.words.len(), "image length mismatch");
        let fw = self.frame_words();
        for i in 0..self.frame_count() {
            let span = i * fw..(i + 1) * fw;
            if self.words[span.clone()] != words[span.clone()] {
                self.words[span.clone()].copy_from_slice(&words[span]);
                self.mark_frame_dirty(i);
            }
        }
    }

    /// Reset to the erased (all-zero) state, marking every frame that held
    /// a set bit.
    pub fn clear(&mut self) {
        let fw = self.frame_words();
        for i in 0..self.frame_count() {
            if self.words[i * fw..(i + 1) * fw].iter().any(|&w| w != 0) {
                self.mark_frame_dirty(i);
            }
        }
        self.words.fill(0);
    }

    /// Mark frame `idx` as touched.
    pub fn mark_frame_dirty(&mut self, idx: usize) {
        debug_assert!(idx < self.frame_count());
        self.dirty[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Whether frame `idx` was touched since the last
    /// [`Self::clear_dirty`].
    pub fn is_frame_dirty(&self, idx: usize) -> bool {
        (self.dirty[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Linear indices of all touched frames, ascending.
    pub fn dirty_frames(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.dirty_count());
        for (i, &chunk) in self.dirty.iter().enumerate() {
            let mut bits = chunk;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(i * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Number of touched frames.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().map(|c| c.count_ones() as usize).sum()
    }

    /// Whether any frame is marked dirty.
    pub fn any_dirty(&self) -> bool {
        self.dirty.iter().any(|&c| c != 0)
    }

    /// Forget all dirty marks, making the current content the new baseline.
    pub fn clear_dirty(&mut self) {
        self.dirty.fill(0);
    }

    /// Number of set bits in the whole image (a cheap occupancy proxy used
    /// in tests and benches).
    pub fn popcount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockType;

    #[test]
    fn starts_erased() {
        let m = ConfigMemory::new(Device::XCV50);
        assert_eq!(m.popcount(), 0);
        assert!(m.as_words().iter().all(|&w| w == 0));
    }

    #[test]
    fn bit_and_field_roundtrip() {
        let mut m = ConfigMemory::new(Device::XCV50);
        m.set_bit(10, 100, true);
        assert!(m.get_bit(10, 100));
        assert!(!m.get_bit(10, 101));
        assert!(!m.get_bit(11, 100));
        m.set_field(3, 40, 16, 0xBEEF);
        assert_eq!(m.get_field(3, 40, 16), 0xBEEF);
        // Overwrite narrower field.
        m.set_field(3, 40, 16, 0x0001);
        assert_eq!(m.get_field(3, 40, 16), 0x0001);
    }

    #[test]
    fn field_spanning_word_boundary() {
        let mut m = ConfigMemory::new(Device::XCV50);
        m.set_field(0, 28, 8, 0xA5);
        assert_eq!(m.get_field(0, 28, 8), 0xA5);
        assert_eq!(m.get_field(0, 28, 4), 0x5);
        assert_eq!(m.get_field(0, 32, 4), 0xA);
    }

    #[test]
    fn frame_write_and_diff() {
        let mut a = ConfigMemory::new(Device::XCV100);
        let b = ConfigMemory::new(Device::XCV100);
        assert!(a.diff_frames(&b).is_empty());
        let far = FrameAddress::new(BlockType::Clb, 2, 5);
        let data = vec![0xDEAD_BEEF; a.frame_words()];
        assert!(a.write_frame(far, &data));
        let idx = a.geometry().frame_index(far).unwrap();
        assert_eq!(a.diff_frames(&b), vec![idx]);
        assert_eq!(a.frame_at(far).unwrap(), &data[..]);
        // Invalid minor rejected.
        let bad = FrameAddress::new(BlockType::Clb, 0, 200);
        assert!(!a.write_frame(bad, &data));
    }

    #[test]
    fn clear_frame_marks_only_frames_with_content() {
        let mut m = ConfigMemory::new(Device::XCV50);
        m.set_bit(4, 10, true);
        m.clear_dirty();
        m.clear_frame(4); // had content: zeroed and marked
        m.clear_frame(5); // already blank: untouched
        assert!(!m.get_bit(4, 10));
        assert_eq!(m.dirty_frames(), vec![4]);
    }

    #[test]
    fn load_words_roundtrip() {
        let mut a = ConfigMemory::new(Device::XCV50);
        a.set_bit(7, 7, true);
        let snapshot: Vec<u32> = a.as_words().to_vec();
        let mut b = ConfigMemory::new(Device::XCV50);
        b.load_words(&snapshot);
        assert_eq!(a, b);
        b.clear();
        assert_eq!(b.popcount(), 0);
    }

    #[test]
    fn starts_clean_and_tracks_writes() {
        let mut m = ConfigMemory::new(Device::XCV50);
        assert!(!m.any_dirty());
        assert_eq!(m.dirty_count(), 0);
        m.set_bit(10, 100, true);
        assert!(m.is_frame_dirty(10));
        assert!(!m.is_frame_dirty(11));
        m.set_field(3, 40, 16, 0xBEEF);
        assert_eq!(m.dirty_frames(), vec![3, 10]);
        assert_eq!(m.dirty_count(), 2);
        m.clear_dirty();
        assert!(!m.any_dirty());
        assert!(m.get_bit(10, 100), "clear_dirty leaves content alone");
    }

    #[test]
    fn no_op_writes_stay_clean() {
        let mut m = ConfigMemory::new(Device::XCV50);
        // Clearing an already-clear bit and writing an already-zero frame
        // change nothing, so nothing is marked.
        m.set_bit(5, 9, false);
        m.set_field(6, 0, 8, 0);
        let zeros = vec![0u32; m.frame_words()];
        assert!(m.write_frame(FrameAddress::new(BlockType::Clb, 1, 0), &zeros));
        m.clear();
        assert!(!m.any_dirty());
    }

    #[test]
    fn frame_mut_marks_conservatively() {
        let mut m = ConfigMemory::new(Device::XCV50);
        let _ = m.frame_mut(42);
        assert!(m.is_frame_dirty(42));
    }

    #[test]
    fn write_frame_and_clear_mark_changed_frames() {
        let mut m = ConfigMemory::new(Device::XCV100);
        let far = FrameAddress::new(BlockType::Clb, 2, 5);
        let data = vec![0x1234_5678; m.frame_words()];
        assert!(m.write_frame(far, &data));
        let idx = m.geometry().frame_index(far).unwrap();
        assert_eq!(m.dirty_frames(), vec![idx]);
        m.clear_dirty();
        // Re-writing identical content is a no-op for the dirty set.
        assert!(m.write_frame(far, &data));
        assert!(!m.any_dirty());
        // clear() marks exactly the frames that held data.
        m.clear();
        assert_eq!(m.dirty_frames(), vec![idx]);
    }

    #[test]
    fn load_words_marks_exact_diff() {
        let mut a = ConfigMemory::new(Device::XCV50);
        a.set_bit(7, 7, true);
        a.set_bit(90, 3, true);
        let snapshot: Vec<u32> = a.as_words().to_vec();
        let mut b = ConfigMemory::new(Device::XCV50);
        b.load_words(&snapshot);
        assert_eq!(b.dirty_frames(), vec![7, 90]);
        b.clear_dirty();
        b.load_words(&snapshot);
        assert!(!b.any_dirty());
    }

    #[test]
    fn equality_ignores_dirty_marks() {
        let mut a = ConfigMemory::new(Device::XCV50);
        let b = ConfigMemory::new(Device::XCV50);
        a.set_bit(0, 0, true);
        a.set_bit(0, 0, false);
        assert!(a.any_dirty());
        assert_eq!(a, b, "write-and-revert leaves content equal");
    }

    #[test]
    fn dirty_is_superset_of_diff() {
        let mut a = ConfigMemory::new(Device::XCV100);
        let base = a.clone();
        a.set_bit(12, 1, true);
        a.set_bit(12, 1, false); // reverted: dirty but not in diff
        a.set_bit(40, 9, true);
        let diff = a.diff_frames(&base);
        let dirty = a.dirty_frames();
        assert_eq!(diff, vec![40]);
        assert_eq!(dirty, vec![12, 40]);
        assert!(diff.iter().all(|f| dirty.contains(f)));
    }
}
