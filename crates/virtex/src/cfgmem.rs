//! The configuration memory image: every frame of a device as addressable
//! words and bits.
//!
//! `ConfigMemory` is the in-memory mirror of a configured device that both
//! `bitgen` (writing) and readback (reading) operate on, and the substrate
//! under the JBits-style resource API.

use crate::config::{ConfigGeometry, FrameAddress};
use crate::family::Device;
use serde::{Deserialize, Serialize};

/// A full configuration-memory image for one device.
///
/// Besides the raw words, the image keeps a per-frame *dirty* bitset: a
/// frame is marked the moment any write changes its content (or hands out
/// a mutable view of it). Partial-bitstream generation reads this set to
/// know which frames to compare/emit without scanning the whole device.
///
/// The dirty set is bookkeeping, not content: it is ignored by
/// `PartialEq`, and a write that stores the value already present does not
/// mark the frame. Because marks are never un-done by later writes, the
/// set is a *superset* of a content diff against the state at the last
/// [`ConfigMemory::clear_dirty`] (writing a bit and writing it back leaves
/// the frame marked).
///
/// The dirty set is hierarchical: one bit per frame in `dirty`, plus one
/// summary bit per 64-frame chunk in `dirty_summary` (set iff the chunk
/// word is non-zero). On large devices where stamping touches a handful
/// of columns, iteration and reset walk the summary and skip runs of
/// clean chunks without loading them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigMemory {
    geometry: ConfigGeometry,
    /// `total_frames * frame_words` words, frame-major.
    words: Vec<u32>,
    /// One bit per frame: set when the frame was touched since the last
    /// `clear_dirty`. Excluded from equality.
    dirty: Vec<u64>,
    /// One bit per `dirty` word: set iff that word is non-zero. Lets
    /// dirty-set iteration skip 4096-frame spans per summary word.
    dirty_summary: Vec<u64>,
}

impl PartialEq for ConfigMemory {
    fn eq(&self, other: &Self) -> bool {
        // Dirty bits are provenance, not content: two images with the same
        // words are the same configuration regardless of write history.
        self.geometry == other.geometry && self.words == other.words
    }
}

impl Eq for ConfigMemory {}

impl ConfigMemory {
    /// An all-zero (erased) configuration for `device`.
    pub fn new(device: Device) -> Self {
        let geometry = ConfigGeometry::for_device(device);
        let words = vec![0; geometry.total_words()];
        let dirty_words = geometry.total_frames().div_ceil(64);
        let dirty = vec![0; dirty_words];
        let dirty_summary = vec![0; dirty_words.div_ceil(64)];
        ConfigMemory {
            geometry,
            words,
            dirty,
            dirty_summary,
        }
    }

    /// The device this image configures.
    pub fn device(&self) -> Device {
        self.geometry.device()
    }

    /// The configuration geometry.
    pub fn geometry(&self) -> &ConfigGeometry {
        &self.geometry
    }

    /// Frame length in words.
    pub fn frame_words(&self) -> usize {
        self.geometry.frame_words()
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.geometry.total_frames()
    }

    /// Read-only view of frame `idx` (linear index).
    pub fn frame(&self, idx: usize) -> &[u32] {
        let fw = self.frame_words();
        &self.words[idx * fw..(idx + 1) * fw]
    }

    /// Mutable view of frame `idx`. Conservatively marks the frame dirty:
    /// the caller may write anything through the returned slice.
    pub fn frame_mut(&mut self, idx: usize) -> &mut [u32] {
        self.mark_frame_dirty(idx);
        let fw = self.frame_words();
        &mut self.words[idx * fw..(idx + 1) * fw]
    }

    /// Read-only view of `len` consecutive frames starting at linear
    /// index `start` — one contiguous slice of the slab, usable as a
    /// multi-frame FDRI payload without copying frame by frame.
    pub fn frame_span(&self, start: usize, len: usize) -> &[u32] {
        let fw = self.frame_words();
        &self.words[start * fw..(start + len) * fw]
    }

    /// Read-only view of the frame at `far`, if the address is valid.
    pub fn frame_at(&self, far: FrameAddress) -> Option<&[u32]> {
        self.geometry.frame_index(far).map(|i| self.frame(i))
    }

    /// Overwrite the frame at `far` with `data` (must be exactly one frame
    /// long). Returns `false` when the address is invalid.
    pub fn write_frame(&mut self, far: FrameAddress, data: &[u32]) -> bool {
        assert_eq!(data.len(), self.frame_words(), "frame length mismatch");
        match self.geometry.frame_index(far) {
            Some(i) => {
                if self.frame(i) != data {
                    self.mark_frame_dirty(i);
                    let fw = self.frame_words();
                    self.words[i * fw..(i + 1) * fw].copy_from_slice(data);
                }
                true
            }
            None => false,
        }
    }

    /// Zero linear frame `idx`, marking it dirty only if it actually held
    /// content — the erase primitive for module stamping, which keeps the
    /// dirty byproduct close to the true content diff on mostly-empty
    /// fabric.
    pub fn clear_frame(&mut self, idx: usize) {
        if self.frame(idx).iter().any(|&w| w != 0) {
            self.mark_frame_dirty(idx);
            let fw = self.frame_words();
            self.words[idx * fw..(idx + 1) * fw].fill(0);
        }
    }

    /// Get a single configuration bit. `bit` addresses the frame's bit
    /// space, MSB-free: bit `b` lives in word `b / 32`, position `b % 32`.
    pub fn get_bit(&self, frame: usize, bit: usize) -> bool {
        let w = self.frame(frame)[bit / 32];
        (w >> (bit % 32)) & 1 == 1
    }

    /// Set a single configuration bit. Marks the frame dirty only when the
    /// stored value actually changes.
    pub fn set_bit(&mut self, frame: usize, bit: usize, value: bool) {
        let fw = self.frame_words();
        let word = &mut self.words[frame * fw + bit / 32];
        let mask = 1u32 << (bit % 32);
        let next = if value { *word | mask } else { *word & !mask };
        if next != *word {
            *word = next;
            self.mark_frame_dirty(frame);
        }
    }

    /// Read a little-endian field of `width <= 32` bits starting at
    /// (`frame`, `bit`), staying within the frame.
    pub fn get_field(&self, frame: usize, bit: usize, width: usize) -> u32 {
        debug_assert!(width <= 32);
        let mut v = 0u32;
        for i in 0..width {
            if self.get_bit(frame, bit + i) {
                v |= 1 << i;
            }
        }
        v
    }

    /// Write a little-endian field of `width <= 32` bits.
    pub fn set_field(&mut self, frame: usize, bit: usize, width: usize, value: u32) {
        debug_assert!(width <= 32);
        for i in 0..width {
            self.set_bit(frame, bit + i, (value >> i) & 1 == 1);
        }
    }

    /// Linear indices of frames that differ between `self` and `other`
    /// (same device required).
    pub fn diff_frames(&self, other: &ConfigMemory) -> Vec<usize> {
        assert_eq!(self.device(), other.device(), "diff across devices");
        (0..self.frame_count())
            .filter(|&i| self.frame(i) != other.frame(i))
            .collect()
    }

    /// The whole image as a flat word slice (frame-major).
    pub fn as_words(&self) -> &[u32] {
        &self.words
    }

    /// Replace the whole image from a flat word slice. Marks exactly the
    /// frames whose content changes.
    pub fn load_words(&mut self, words: &[u32]) {
        assert_eq!(words.len(), self.words.len(), "image length mismatch");
        let fw = self.frame_words();
        for i in 0..self.frame_count() {
            let span = i * fw..(i + 1) * fw;
            if self.words[span.clone()] != words[span.clone()] {
                self.words[span.clone()].copy_from_slice(&words[span]);
                self.mark_frame_dirty(i);
            }
        }
    }

    /// Reset to the erased (all-zero) state, marking every frame that held
    /// a set bit.
    pub fn clear(&mut self) {
        let fw = self.frame_words();
        for i in 0..self.frame_count() {
            if self.words[i * fw..(i + 1) * fw].iter().any(|&w| w != 0) {
                self.mark_frame_dirty(i);
            }
        }
        self.words.fill(0);
    }

    /// Mark frame `idx` as touched.
    pub fn mark_frame_dirty(&mut self, idx: usize) {
        debug_assert!(idx < self.frame_count());
        let word = idx / 64;
        self.dirty[word] |= 1u64 << (idx % 64);
        self.dirty_summary[word / 64] |= 1u64 << (word % 64);
    }

    /// Whether frame `idx` was touched since the last
    /// [`Self::clear_dirty`].
    pub fn is_frame_dirty(&self, idx: usize) -> bool {
        (self.dirty[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Visit every touched chunk of the dirty bitmap: `(word, bits)`
    /// pairs where `bits` is the non-zero 64-frame chunk at
    /// `dirty[word]`. Walks the summary level, so runs of clean chunks
    /// cost one bit-scan per 4096 frames.
    fn for_each_dirty_word(&self, mut f: impl FnMut(usize, u64)) {
        for (s, &sum) in self.dirty_summary.iter().enumerate() {
            let mut sum_bits = sum;
            while sum_bits != 0 {
                let w = s * 64 + sum_bits.trailing_zeros() as usize;
                sum_bits &= sum_bits - 1;
                f(w, self.dirty[w]);
            }
        }
    }

    /// Linear indices of all touched frames, ascending.
    pub fn dirty_frames(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.dirty_count());
        self.dirty_frames_into(&mut out);
        out
    }

    /// Append the indices of all touched frames to `out`, ascending —
    /// the allocation-free spelling of [`Self::dirty_frames`] for
    /// callers that recycle the vector across generations.
    pub fn dirty_frames_into(&self, out: &mut Vec<usize>) {
        self.for_each_dirty_word(|w, mut bits| {
            while bits != 0 {
                out.push(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        });
    }

    /// Number of touched frames.
    pub fn dirty_count(&self) -> usize {
        let mut n = 0;
        self.for_each_dirty_word(|_, bits| n += bits.count_ones() as usize);
        n
    }

    /// Whether any frame is marked dirty.
    pub fn any_dirty(&self) -> bool {
        self.dirty_summary.iter().any(|&c| c != 0)
    }

    /// Forget all dirty marks, making the current content the new
    /// baseline. Resets only the chunks the summary flags as touched.
    pub fn clear_dirty(&mut self) {
        for (s, sum) in self.dirty_summary.iter_mut().enumerate() {
            let mut sum_bits = *sum;
            while sum_bits != 0 {
                let w = s * 64 + sum_bits.trailing_zeros() as usize;
                sum_bits &= sum_bits - 1;
                self.dirty[w] = 0;
            }
            *sum = 0;
        }
    }

    /// Number of set bits in the whole image (a cheap occupancy proxy used
    /// in tests and benches).
    pub fn popcount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockType;

    #[test]
    fn starts_erased() {
        let m = ConfigMemory::new(Device::XCV50);
        assert_eq!(m.popcount(), 0);
        assert!(m.as_words().iter().all(|&w| w == 0));
    }

    #[test]
    fn bit_and_field_roundtrip() {
        let mut m = ConfigMemory::new(Device::XCV50);
        m.set_bit(10, 100, true);
        assert!(m.get_bit(10, 100));
        assert!(!m.get_bit(10, 101));
        assert!(!m.get_bit(11, 100));
        m.set_field(3, 40, 16, 0xBEEF);
        assert_eq!(m.get_field(3, 40, 16), 0xBEEF);
        // Overwrite narrower field.
        m.set_field(3, 40, 16, 0x0001);
        assert_eq!(m.get_field(3, 40, 16), 0x0001);
    }

    #[test]
    fn field_spanning_word_boundary() {
        let mut m = ConfigMemory::new(Device::XCV50);
        m.set_field(0, 28, 8, 0xA5);
        assert_eq!(m.get_field(0, 28, 8), 0xA5);
        assert_eq!(m.get_field(0, 28, 4), 0x5);
        assert_eq!(m.get_field(0, 32, 4), 0xA);
    }

    #[test]
    fn frame_write_and_diff() {
        let mut a = ConfigMemory::new(Device::XCV100);
        let b = ConfigMemory::new(Device::XCV100);
        assert!(a.diff_frames(&b).is_empty());
        let far = FrameAddress::new(BlockType::Clb, 2, 5);
        let data = vec![0xDEAD_BEEF; a.frame_words()];
        assert!(a.write_frame(far, &data));
        let idx = a.geometry().frame_index(far).unwrap();
        assert_eq!(a.diff_frames(&b), vec![idx]);
        assert_eq!(a.frame_at(far).unwrap(), &data[..]);
        // Invalid minor rejected.
        let bad = FrameAddress::new(BlockType::Clb, 0, 200);
        assert!(!a.write_frame(bad, &data));
    }

    #[test]
    fn clear_frame_marks_only_frames_with_content() {
        let mut m = ConfigMemory::new(Device::XCV50);
        m.set_bit(4, 10, true);
        m.clear_dirty();
        m.clear_frame(4); // had content: zeroed and marked
        m.clear_frame(5); // already blank: untouched
        assert!(!m.get_bit(4, 10));
        assert_eq!(m.dirty_frames(), vec![4]);
    }

    #[test]
    fn load_words_roundtrip() {
        let mut a = ConfigMemory::new(Device::XCV50);
        a.set_bit(7, 7, true);
        let snapshot: Vec<u32> = a.as_words().to_vec();
        let mut b = ConfigMemory::new(Device::XCV50);
        b.load_words(&snapshot);
        assert_eq!(a, b);
        b.clear();
        assert_eq!(b.popcount(), 0);
    }

    #[test]
    fn starts_clean_and_tracks_writes() {
        let mut m = ConfigMemory::new(Device::XCV50);
        assert!(!m.any_dirty());
        assert_eq!(m.dirty_count(), 0);
        m.set_bit(10, 100, true);
        assert!(m.is_frame_dirty(10));
        assert!(!m.is_frame_dirty(11));
        m.set_field(3, 40, 16, 0xBEEF);
        assert_eq!(m.dirty_frames(), vec![3, 10]);
        assert_eq!(m.dirty_count(), 2);
        m.clear_dirty();
        assert!(!m.any_dirty());
        assert!(m.get_bit(10, 100), "clear_dirty leaves content alone");
    }

    #[test]
    fn no_op_writes_stay_clean() {
        let mut m = ConfigMemory::new(Device::XCV50);
        // Clearing an already-clear bit and writing an already-zero frame
        // change nothing, so nothing is marked.
        m.set_bit(5, 9, false);
        m.set_field(6, 0, 8, 0);
        let zeros = vec![0u32; m.frame_words()];
        assert!(m.write_frame(FrameAddress::new(BlockType::Clb, 1, 0), &zeros));
        m.clear();
        assert!(!m.any_dirty());
    }

    #[test]
    fn frame_mut_marks_conservatively() {
        let mut m = ConfigMemory::new(Device::XCV50);
        let _ = m.frame_mut(42);
        assert!(m.is_frame_dirty(42));
    }

    #[test]
    fn write_frame_and_clear_mark_changed_frames() {
        let mut m = ConfigMemory::new(Device::XCV100);
        let far = FrameAddress::new(BlockType::Clb, 2, 5);
        let data = vec![0x1234_5678; m.frame_words()];
        assert!(m.write_frame(far, &data));
        let idx = m.geometry().frame_index(far).unwrap();
        assert_eq!(m.dirty_frames(), vec![idx]);
        m.clear_dirty();
        // Re-writing identical content is a no-op for the dirty set.
        assert!(m.write_frame(far, &data));
        assert!(!m.any_dirty());
        // clear() marks exactly the frames that held data.
        m.clear();
        assert_eq!(m.dirty_frames(), vec![idx]);
    }

    #[test]
    fn load_words_marks_exact_diff() {
        let mut a = ConfigMemory::new(Device::XCV50);
        a.set_bit(7, 7, true);
        a.set_bit(90, 3, true);
        let snapshot: Vec<u32> = a.as_words().to_vec();
        let mut b = ConfigMemory::new(Device::XCV50);
        b.load_words(&snapshot);
        assert_eq!(b.dirty_frames(), vec![7, 90]);
        b.clear_dirty();
        b.load_words(&snapshot);
        assert!(!b.any_dirty());
    }

    #[test]
    fn equality_ignores_dirty_marks() {
        let mut a = ConfigMemory::new(Device::XCV50);
        let b = ConfigMemory::new(Device::XCV50);
        a.set_bit(0, 0, true);
        a.set_bit(0, 0, false);
        assert!(a.any_dirty());
        assert_eq!(a, b, "write-and-revert leaves content equal");
    }

    #[test]
    fn frame_span_matches_per_frame_views() {
        let mut m = ConfigMemory::new(Device::XCV50);
        m.set_bit(8, 3, true);
        m.set_bit(10, 17, true);
        let span = m.frame_span(8, 3);
        assert_eq!(span.len(), 3 * m.frame_words());
        let fw = m.frame_words();
        for (k, idx) in (8..11).enumerate() {
            assert_eq!(&span[k * fw..(k + 1) * fw], m.frame(idx));
        }
        assert_eq!(m.frame_span(8, 0), &[] as &[u32]);
    }

    #[test]
    fn dirty_frames_into_appends_and_reuses() {
        let mut m = ConfigMemory::new(Device::XCV100);
        m.set_bit(5, 0, true);
        m.set_bit(700, 0, true);
        let mut out = vec![999];
        m.dirty_frames_into(&mut out);
        assert_eq!(out, vec![999, 5, 700]);
        out.clear();
        m.dirty_frames_into(&mut out);
        assert_eq!(out, m.dirty_frames());
    }

    #[test]
    fn summary_survives_clear_and_remark() {
        // Frames far enough apart to land in distinct summary chunks on
        // no device we have — but the same code path must stay exact
        // across mark/clear/mark cycles regardless.
        let mut m = ConfigMemory::new(Device::XCV100);
        for idx in [0, 63, 64, 127, 1000] {
            m.mark_frame_dirty(idx);
        }
        assert_eq!(m.dirty_frames(), vec![0, 63, 64, 127, 1000]);
        assert_eq!(m.dirty_count(), 5);
        m.clear_dirty();
        assert!(!m.any_dirty());
        assert_eq!(m.dirty_count(), 0);
        assert!(m.dirty_frames().is_empty());
        m.mark_frame_dirty(64);
        assert_eq!(m.dirty_frames(), vec![64]);
        assert!(m.is_frame_dirty(64));
        assert!(!m.is_frame_dirty(63));
    }

    #[test]
    fn dirty_is_superset_of_diff() {
        let mut a = ConfigMemory::new(Device::XCV100);
        let base = a.clone();
        a.set_bit(12, 1, true);
        a.set_bit(12, 1, false); // reverted: dirty but not in diff
        a.set_bit(40, 9, true);
        let diff = a.diff_frames(&base);
        let dirty = a.dirty_frames();
        assert_eq!(diff, vec![40]);
        assert_eq!(dirty, vec![12, 40]);
        assert!(diff.iter().all(|f| dirty.contains(f)));
    }
}
