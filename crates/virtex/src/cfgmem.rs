//! The configuration memory image: every frame of a device as addressable
//! words and bits.
//!
//! `ConfigMemory` is the in-memory mirror of a configured device that both
//! `bitgen` (writing) and readback (reading) operate on, and the substrate
//! under the JBits-style resource API.

use crate::config::{ConfigGeometry, FrameAddress};
use crate::family::Device;
use serde::{Deserialize, Serialize};

/// A full configuration-memory image for one device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigMemory {
    geometry: ConfigGeometry,
    /// `total_frames * frame_words` words, frame-major.
    words: Vec<u32>,
}

impl ConfigMemory {
    /// An all-zero (erased) configuration for `device`.
    pub fn new(device: Device) -> Self {
        let geometry = ConfigGeometry::for_device(device);
        let words = vec![0; geometry.total_words()];
        ConfigMemory { geometry, words }
    }

    /// The device this image configures.
    pub fn device(&self) -> Device {
        self.geometry.device()
    }

    /// The configuration geometry.
    pub fn geometry(&self) -> &ConfigGeometry {
        &self.geometry
    }

    /// Frame length in words.
    pub fn frame_words(&self) -> usize {
        self.geometry.frame_words()
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.geometry.total_frames()
    }

    /// Read-only view of frame `idx` (linear index).
    pub fn frame(&self, idx: usize) -> &[u32] {
        let fw = self.frame_words();
        &self.words[idx * fw..(idx + 1) * fw]
    }

    /// Mutable view of frame `idx`.
    pub fn frame_mut(&mut self, idx: usize) -> &mut [u32] {
        let fw = self.frame_words();
        &mut self.words[idx * fw..(idx + 1) * fw]
    }

    /// Read-only view of the frame at `far`, if the address is valid.
    pub fn frame_at(&self, far: FrameAddress) -> Option<&[u32]> {
        self.geometry.frame_index(far).map(|i| self.frame(i))
    }

    /// Overwrite the frame at `far` with `data` (must be exactly one frame
    /// long). Returns `false` when the address is invalid.
    pub fn write_frame(&mut self, far: FrameAddress, data: &[u32]) -> bool {
        assert_eq!(data.len(), self.frame_words(), "frame length mismatch");
        match self.geometry.frame_index(far) {
            Some(i) => {
                self.frame_mut(i).copy_from_slice(data);
                true
            }
            None => false,
        }
    }

    /// Get a single configuration bit. `bit` addresses the frame's bit
    /// space, MSB-free: bit `b` lives in word `b / 32`, position `b % 32`.
    pub fn get_bit(&self, frame: usize, bit: usize) -> bool {
        let w = self.frame(frame)[bit / 32];
        (w >> (bit % 32)) & 1 == 1
    }

    /// Set a single configuration bit.
    pub fn set_bit(&mut self, frame: usize, bit: usize, value: bool) {
        let word = &mut self.frame_mut(frame)[bit / 32];
        if value {
            *word |= 1 << (bit % 32);
        } else {
            *word &= !(1 << (bit % 32));
        }
    }

    /// Read a little-endian field of `width <= 32` bits starting at
    /// (`frame`, `bit`), staying within the frame.
    pub fn get_field(&self, frame: usize, bit: usize, width: usize) -> u32 {
        debug_assert!(width <= 32);
        let mut v = 0u32;
        for i in 0..width {
            if self.get_bit(frame, bit + i) {
                v |= 1 << i;
            }
        }
        v
    }

    /// Write a little-endian field of `width <= 32` bits.
    pub fn set_field(&mut self, frame: usize, bit: usize, width: usize, value: u32) {
        debug_assert!(width <= 32);
        for i in 0..width {
            self.set_bit(frame, bit + i, (value >> i) & 1 == 1);
        }
    }

    /// Linear indices of frames that differ between `self` and `other`
    /// (same device required).
    pub fn diff_frames(&self, other: &ConfigMemory) -> Vec<usize> {
        assert_eq!(self.device(), other.device(), "diff across devices");
        (0..self.frame_count())
            .filter(|&i| self.frame(i) != other.frame(i))
            .collect()
    }

    /// The whole image as a flat word slice (frame-major).
    pub fn as_words(&self) -> &[u32] {
        &self.words
    }

    /// Replace the whole image from a flat word slice.
    pub fn load_words(&mut self, words: &[u32]) {
        assert_eq!(words.len(), self.words.len(), "image length mismatch");
        self.words.copy_from_slice(words);
    }

    /// Reset to the erased (all-zero) state.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits in the whole image (a cheap occupancy proxy used
    /// in tests and benches).
    pub fn popcount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockType;

    #[test]
    fn starts_erased() {
        let m = ConfigMemory::new(Device::XCV50);
        assert_eq!(m.popcount(), 0);
        assert!(m.as_words().iter().all(|&w| w == 0));
    }

    #[test]
    fn bit_and_field_roundtrip() {
        let mut m = ConfigMemory::new(Device::XCV50);
        m.set_bit(10, 100, true);
        assert!(m.get_bit(10, 100));
        assert!(!m.get_bit(10, 101));
        assert!(!m.get_bit(11, 100));
        m.set_field(3, 40, 16, 0xBEEF);
        assert_eq!(m.get_field(3, 40, 16), 0xBEEF);
        // Overwrite narrower field.
        m.set_field(3, 40, 16, 0x0001);
        assert_eq!(m.get_field(3, 40, 16), 0x0001);
    }

    #[test]
    fn field_spanning_word_boundary() {
        let mut m = ConfigMemory::new(Device::XCV50);
        m.set_field(0, 28, 8, 0xA5);
        assert_eq!(m.get_field(0, 28, 8), 0xA5);
        assert_eq!(m.get_field(0, 28, 4), 0x5);
        assert_eq!(m.get_field(0, 32, 4), 0xA);
    }

    #[test]
    fn frame_write_and_diff() {
        let mut a = ConfigMemory::new(Device::XCV100);
        let b = ConfigMemory::new(Device::XCV100);
        assert!(a.diff_frames(&b).is_empty());
        let far = FrameAddress::new(BlockType::Clb, 2, 5);
        let data = vec![0xDEAD_BEEF; a.frame_words()];
        assert!(a.write_frame(far, &data));
        let idx = a.geometry().frame_index(far).unwrap();
        assert_eq!(a.diff_frames(&b), vec![idx]);
        assert_eq!(a.frame_at(far).unwrap(), &data[..]);
        // Invalid minor rejected.
        let bad = FrameAddress::new(BlockType::Clb, 0, 200);
        assert!(!a.write_frame(bad, &data));
    }

    #[test]
    fn load_words_roundtrip() {
        let mut a = ConfigMemory::new(Device::XCV50);
        a.set_bit(7, 7, true);
        let snapshot: Vec<u32> = a.as_words().to_vec();
        let mut b = ConfigMemory::new(Device::XCV50);
        b.load_words(&snapshot);
        assert_eq!(a, b);
        b.clear();
        assert_eq!(b.popcount(), 0);
    }
}
