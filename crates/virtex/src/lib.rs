//! # virtex — a Virtex-class FPGA device architecture model
//!
//! This crate models the parts of the Xilinx Virtex (XCV) architecture that
//! matter for *configuration*: the logic fabric geometry (CLB array, slices,
//! LUTs, IOBs, block RAM), the routing fabric (wires and programmable
//! interconnect points), and — most importantly for the JPG reproduction —
//! the **frame-oriented configuration memory** with its column/frame (FAR)
//! addressing scheme. Virtex devices are reconfigured in units of whole
//! *frames*, each frame spanning a full column of the die; partial
//! reconfiguration is therefore column-granular, which is exactly the
//! property the JPG tool exploits.
//!
//! The model follows the publicly documented structure of the Virtex
//! configuration architecture (XAPP151): per-column frame counts, a frame
//! length derived from the number of CLB rows, and a major/minor frame
//! address ordering that starts at the center clock column and alternates
//! outwards. Intra-frame bit positions for individual resources are our own
//! deterministic layout (defined in the `jbits` crate); every size and time
//! ratio reported by the paper is independent of that layout.
//!
//! ## Quick tour
//!
//! ```
//! use virtex::{Device, FrameAddress, BlockType};
//!
//! let dev = Device::XCV100;
//! let geo = dev.geometry();
//! assert_eq!((geo.clb_rows, geo.clb_cols), (20, 30));
//!
//! // Walk the configuration columns and total the frames.
//! let cfg = dev.config_geometry();
//! let total: usize = cfg.columns().map(|c| c.frame_count()).sum();
//! assert_eq!(total, cfg.total_frames());
//!
//! // FAR addressing round-trips through the linear frame index.
//! let far = FrameAddress::new(BlockType::Clb, 3, 7);
//! let idx = cfg.frame_index(far).unwrap();
//! assert_eq!(cfg.frame_address(idx), Some(far));
//! ```

pub mod bram;
pub mod cfgmem;
pub mod config;
pub mod family;
pub mod grid;
pub mod resources;
pub mod routing;

pub use bram::{BramCoord, BRAM_BITS};
pub use cfgmem::ConfigMemory;
pub use config::{BlockType, ColumnKind, ConfigColumn, ConfigGeometry, FrameAddress};
pub use family::{Device, Geometry};
pub use grid::{IobCoord, SliceCoord, SliceId, TileCoord, TileKind};
pub use resources::{ClbResource, IobResource, LutId, MuxSetting, ResourceValue, SliceResource};
pub use routing::{Dir, Pip, RoutingGraph, SlicePin, Wire, WireKind};
