//! Routing fabric model: wires, programmable interconnect points (PIPs) and
//! the switch-box connectivity function.
//!
//! The model is a compact but structurally faithful rendition of the Virtex
//! routing architecture:
//!
//! * **slice pins** — logical input/output pins of the two slices;
//! * **output muxes (OMUX)** — 8 per CLB tile, fed by slice outputs, the
//!   only drivers of general routing;
//! * **singles** — 8 wires per direction per tile, spanning one tile;
//! * **hexes** — 4 wires per direction per tile, spanning six tiles with
//!   taps at distance 3 and 6;
//! * **long lines** — 2 horizontal per row and 2 vertical per column,
//!   spanning the die, with taps every fourth tile;
//! * **IOB pads** — 4 per IOB tile, sourcing/sinking singles on the ring;
//! * **global clocks** — 4 device-wide nets reaching every slice CLK pin.
//!
//! Every PIP has a *location tile* (the tile whose configuration frames
//! hold its enable bit): the driving tile for output-side muxes and the
//! destination tile for input-side muxes. [`RoutingGraph::tile_pips`]
//! enumerates a tile's PIPs in a stable order, which the `jbits` crate uses
//! to assign configuration bit positions.

use crate::family::Device;
use crate::grid::{SliceId, TileCoord, TileKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Singles per direction per tile.
pub const SINGLES_PER_DIR: usize = 8;
/// Hex lines per direction per tile.
pub const HEX_PER_DIR: usize = 4;
/// OMUX positions per CLB tile.
pub const OMUX_COUNT: usize = 8;
/// Long lines per row (horizontal) and per column (vertical).
pub const LONGS_PER_TRACK: usize = 2;
/// Device-wide global clock nets.
pub const GLOBAL_CLOCKS: usize = 4;
/// Pads per IOB tile.
pub const PADS_PER_IOB: usize = 4;
/// Hex line span in tiles.
pub const HEX_SPAN: i32 = 6;
/// Long-line tap spacing in tiles.
pub const LONG_TAP_SPACING: i32 = 4;

/// The four routing directions. `North` decreases the row index (row 0 is
/// the top of the die).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dir {
    /// Towards row 0.
    North,
    /// Towards higher columns.
    East,
    /// Towards higher rows.
    South,
    /// Towards column 0.
    West,
}

impl Dir {
    /// All directions in canonical order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// Unit step (row delta, col delta).
    pub fn delta(self) -> (i32, i32) {
        match self {
            Dir::North => (-1, 0),
            Dir::East => (0, 1),
            Dir::South => (1, 0),
            Dir::West => (0, -1),
        }
    }

    /// The reverse direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Canonical index 0..4.
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        }
    }

    /// Short name used in wire names (`N`, `E`, `S`, `W`).
    pub fn letter(self) -> char {
        match self {
            Dir::North => 'N',
            Dir::East => 'E',
            Dir::South => 'S',
            Dir::West => 'W',
        }
    }

    /// Parse a direction letter.
    pub fn from_letter(c: char) -> Option<Dir> {
        match c {
            'N' => Some(Dir::North),
            'E' => Some(Dir::East),
            'S' => Some(Dir::South),
            'W' => Some(Dir::West),
            _ => None,
        }
    }
}

/// A logical pin of a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SlicePin {
    F1,
    F2,
    F3,
    F4,
    G1,
    G2,
    G3,
    G4,
    BX,
    BY,
    CE,
    SR,
    Clk,
    X,
    Y,
    XQ,
    YQ,
}

impl SlicePin {
    /// All pins, inputs first then outputs.
    pub const ALL: [SlicePin; 17] = [
        SlicePin::F1,
        SlicePin::F2,
        SlicePin::F3,
        SlicePin::F4,
        SlicePin::G1,
        SlicePin::G2,
        SlicePin::G3,
        SlicePin::G4,
        SlicePin::BX,
        SlicePin::BY,
        SlicePin::CE,
        SlicePin::SR,
        SlicePin::Clk,
        SlicePin::X,
        SlicePin::Y,
        SlicePin::XQ,
        SlicePin::YQ,
    ];

    /// Canonical index within [`Self::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|p| *p == self)
            .expect("pin in ALL")
    }

    /// Whether this is a slice output.
    pub fn is_output(self) -> bool {
        matches!(
            self,
            SlicePin::X | SlicePin::Y | SlicePin::XQ | SlicePin::YQ
        )
    }

    /// Index among the four outputs (X=0, Y=1, XQ=2, YQ=3).
    pub fn output_index(self) -> Option<usize> {
        match self {
            SlicePin::X => Some(0),
            SlicePin::Y => Some(1),
            SlicePin::XQ => Some(2),
            SlicePin::YQ => Some(3),
            _ => None,
        }
    }

    /// Pin name as used in XDL (`F1` … `YQ`).
    pub fn name(self) -> &'static str {
        match self {
            SlicePin::F1 => "F1",
            SlicePin::F2 => "F2",
            SlicePin::F3 => "F3",
            SlicePin::F4 => "F4",
            SlicePin::G1 => "G1",
            SlicePin::G2 => "G2",
            SlicePin::G3 => "G3",
            SlicePin::G4 => "G4",
            SlicePin::BX => "BX",
            SlicePin::BY => "BY",
            SlicePin::CE => "CE",
            SlicePin::SR => "SR",
            SlicePin::Clk => "CLK",
            SlicePin::X => "X",
            SlicePin::Y => "Y",
            SlicePin::XQ => "XQ",
            SlicePin::YQ => "YQ",
        }
    }

    /// Parse an XDL pin name.
    pub fn parse(s: &str) -> Option<SlicePin> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// The kind of a wire within (or anchored at) a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WireKind {
    /// A slice pin wire (CLB tiles only).
    SlicePin {
        /// Which slice.
        slice: SliceId,
        /// Which pin.
        pin: SlicePin,
    },
    /// An output-mux wire (CLB tiles only), index `0..OMUX_COUNT`.
    Omux(u8),
    /// A single-length wire driven from this tile towards `dir`.
    Single {
        /// Travel direction.
        dir: Dir,
        /// Track index `0..SINGLES_PER_DIR`.
        idx: u8,
    },
    /// A hex wire driven from this tile towards `dir` (CLB tiles only).
    Hex {
        /// Travel direction.
        dir: Dir,
        /// Track index `0..HEX_PER_DIR`.
        idx: u8,
    },
    /// A long line. Horizontal longs are anchored at column 0 of their
    /// row; vertical longs at row 0 of their column.
    Long {
        /// Horizontal (row-spanning) vs vertical.
        horiz: bool,
        /// Track index `0..LONGS_PER_TRACK`.
        idx: u8,
    },
    /// Pad input wire: the signal a pad drives *into* the fabric
    /// (IOB tiles only), index `0..PADS_PER_IOB`.
    PadIn(u8),
    /// Pad output wire: the signal the fabric drives *to* a pad
    /// (IOB tiles only).
    PadOut(u8),
    /// A global clock net (anchored at tile (0,0)), index
    /// `0..GLOBAL_CLOCKS`.
    GlobalClock(u8),
}

/// A wire: a kind anchored at a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Wire {
    /// Anchor tile (driving tile for singles/hexes; canonical anchor for
    /// longs and clocks).
    pub tile: TileCoord,
    /// What the wire is.
    pub kind: WireKind,
}

impl Wire {
    /// Construct a wire.
    pub fn new(tile: TileCoord, kind: WireKind) -> Self {
        Wire { tile, kind }
    }

    /// Canonical wire name, e.g. `R3C23/S0_X`, `R3C23/SINGLE_E5`,
    /// `R1C1/LONG_H0`.
    pub fn name(&self) -> String {
        let t = self.tile;
        match self.kind {
            WireKind::SlicePin { slice, pin } => {
                format!("{t}/S{}_{}", slice.index(), pin.name())
            }
            WireKind::Omux(i) => format!("{t}/OMUX{i}"),
            WireKind::Single { dir, idx } => format!("{t}/SINGLE_{}{idx}", dir.letter()),
            WireKind::Hex { dir, idx } => format!("{t}/HEX_{}{idx}", dir.letter()),
            WireKind::Long { horiz, idx } => {
                format!("{t}/LONG_{}{idx}", if horiz { 'H' } else { 'V' })
            }
            WireKind::PadIn(i) => format!("{t}/PAD_I{i}"),
            WireKind::PadOut(i) => format!("{t}/PAD_O{i}"),
            WireKind::GlobalClock(i) => format!("{t}/GCLK{i}"),
        }
    }

    /// Parse a name produced by [`Self::name`].
    pub fn parse(s: &str) -> Option<Wire> {
        let (loc, rest) = s.split_once('/')?;
        let loc = loc.strip_prefix('R')?;
        let (row, col) = loc.split_once('C')?;
        let tile = TileCoord::new(row.parse::<i32>().ok()? - 1, col.parse::<i32>().ok()? - 1);
        let kind = if let Some(rest) = rest.strip_prefix("OMUX") {
            WireKind::Omux(rest.parse().ok()?)
        } else if let Some(rest) = rest.strip_prefix("SINGLE_") {
            let mut ch = rest.chars();
            let dir = Dir::from_letter(ch.next()?)?;
            WireKind::Single {
                dir,
                idx: ch.as_str().parse().ok()?,
            }
        } else if let Some(rest) = rest.strip_prefix("HEX_") {
            let mut ch = rest.chars();
            let dir = Dir::from_letter(ch.next()?)?;
            WireKind::Hex {
                dir,
                idx: ch.as_str().parse().ok()?,
            }
        } else if let Some(rest) = rest.strip_prefix("LONG_") {
            let mut ch = rest.chars();
            let horiz = match ch.next()? {
                'H' => true,
                'V' => false,
                _ => return None,
            };
            WireKind::Long {
                horiz,
                idx: ch.as_str().parse().ok()?,
            }
        } else if let Some(rest) = rest.strip_prefix("PAD_I") {
            WireKind::PadIn(rest.parse().ok()?)
        } else if let Some(rest) = rest.strip_prefix("PAD_O") {
            WireKind::PadOut(rest.parse().ok()?)
        } else if let Some(rest) = rest.strip_prefix("GCLK") {
            WireKind::GlobalClock(rest.parse().ok()?)
        } else if let Some(rest) = rest.strip_prefix('S') {
            let (slice, pin) = rest.split_once('_')?;
            WireKind::SlicePin {
                slice: SliceId::from_index(slice.parse().ok()?)?,
                pin: SlicePin::parse(pin)?,
            }
        } else {
            return None;
        };
        Some(Wire::new(tile, kind))
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A programmable interconnect point: a switch that, when enabled, drives
/// `to` from `from`. `loc` is the tile whose configuration frames hold the
/// enable bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pip {
    /// Tile owning the configuration bit.
    pub loc: TileCoord,
    /// Source wire.
    pub from: Wire,
    /// Destination wire.
    pub to: Wire,
}

impl fmt::Display for Pip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pip {} {} -> {}", self.loc, self.from, self.to)
    }
}

/// The routing graph of one device: a *functional* representation — PIPs
/// are computed from switch-box rules rather than stored, so the graph
/// costs O(1) memory regardless of device size.
#[derive(Debug, Clone)]
pub struct RoutingGraph {
    device: Device,
    rows: i32,
    cols: i32,
}

impl RoutingGraph {
    /// Build the routing graph for `device`.
    pub fn new(device: Device) -> Self {
        let g = device.geometry();
        RoutingGraph {
            device,
            rows: g.clb_rows as i32,
            cols: g.clb_cols as i32,
        }
    }

    /// The device this graph describes.
    pub fn device(&self) -> Device {
        self.device
    }

    fn on_grid(&self, t: TileCoord) -> bool {
        !matches!(t.kind(self.device), TileKind::OffDevice | TileKind::Corner)
    }

    fn is_clb(&self, t: TileCoord) -> bool {
        t.kind(self.device) == TileKind::Clb
    }

    fn is_iob(&self, t: TileCoord) -> bool {
        t.is_iob(self.device)
    }

    /// Direction from an IOB tile into the fabric, if `t` is an IOB tile.
    pub fn iob_fabric_dir(&self, t: TileCoord) -> Option<Dir> {
        match t.kind(self.device) {
            TileKind::IobTop => Some(Dir::South),
            TileKind::IobBottom => Some(Dir::North),
            TileKind::IobLeft => Some(Dir::East),
            TileKind::IobRight => Some(Dir::West),
            _ => None,
        }
    }

    /// Whether `wire` is a valid wire of this device.
    pub fn wire_exists(&self, wire: Wire) -> bool {
        let t = wire.tile;
        match wire.kind {
            WireKind::SlicePin { .. } | WireKind::Omux(_) | WireKind::Hex { .. } => self.is_clb(t),
            WireKind::Single { dir, idx } => {
                (idx as usize) < SINGLES_PER_DIR && self.on_grid(t) && {
                    // The wire must land on the grid too, and IOB tiles only
                    // drive singles towards the fabric.
                    let (dr, dc) = dir.delta();
                    let dest = TileCoord::new(t.row + dr, t.col + dc);
                    let src_ok = if self.is_iob(t) {
                        self.iob_fabric_dir(t) == Some(dir)
                    } else {
                        true
                    };
                    src_ok && self.on_grid(dest)
                }
            }
            WireKind::Long { horiz, idx } => {
                (idx as usize) < LONGS_PER_TRACK
                    && if horiz {
                        t.col == 0 && (0..self.rows).contains(&t.row)
                    } else {
                        t.row == 0 && (0..self.cols).contains(&t.col)
                    }
            }
            WireKind::PadIn(i) | WireKind::PadOut(i) => {
                (i as usize) < PADS_PER_IOB && self.is_iob(t)
            }
            WireKind::GlobalClock(i) => (i as usize) < GLOBAL_CLOCKS && t == TileCoord::new(0, 0),
        }
    }

    /// Canonical anchor for a horizontal long line in `row`.
    pub fn long_h(&self, row: i32, idx: u8) -> Wire {
        Wire::new(TileCoord::new(row, 0), WireKind::Long { horiz: true, idx })
    }

    /// Canonical anchor for a vertical long line in `col`.
    pub fn long_v(&self, col: i32, idx: u8) -> Wire {
        Wire::new(TileCoord::new(0, col), WireKind::Long { horiz: false, idx })
    }

    /// The global clock wire `idx`.
    pub fn global_clock(&self, idx: u8) -> Wire {
        Wire::new(TileCoord::new(0, 0), WireKind::GlobalClock(idx))
    }

    /// Append every PIP driving out of `wire` to `out`. This is the
    /// forward-expansion function used by the router.
    pub fn downhill(&self, wire: Wire, out: &mut Vec<Pip>) {
        debug_assert!(self.wire_exists(wire), "downhill of invalid wire {wire}");
        let t = wire.tile;
        let push = |out: &mut Vec<Pip>, loc: TileCoord, from: Wire, to: Wire| {
            out.push(Pip { loc, from, to });
        };
        match wire.kind {
            WireKind::SlicePin { slice, pin } => {
                // Slice outputs feed two OMUX positions each.
                if let Some(o) = pin.output_index() {
                    let base = (slice.index() * 4 + o) as u8;
                    for omux in [base, (base + 3) % OMUX_COUNT as u8] {
                        push(out, t, wire, Wire::new(t, WireKind::Omux(omux)));
                    }
                }
            }
            WireKind::Omux(j) => {
                // OMUX drives singles (two tracks per direction), hexes,
                // and long lines.
                for dir in Dir::ALL {
                    for idx in [j, (j + 4) % SINGLES_PER_DIR as u8] {
                        let s = Wire::new(t, WireKind::Single { dir, idx });
                        if self.wire_exists(s) {
                            push(out, t, wire, s);
                        }
                    }
                    let h = Wire::new(
                        t,
                        WireKind::Hex {
                            dir,
                            idx: j % HEX_PER_DIR as u8,
                        },
                    );
                    if self.wire_exists(h) {
                        push(out, t, wire, h);
                    }
                }
                let li = j % LONGS_PER_TRACK as u8;
                push(out, t, wire, self.long_h(t.row, li));
                push(out, t, wire, self.long_v(t.col, li));
            }
            WireKind::Single { dir, idx } => {
                let (dr, dc) = dir.delta();
                let u = TileCoord::new(t.row + dr, t.col + dc);
                if self.is_clb(u) {
                    // Input-pin muxes at the destination tile.
                    for slice in SliceId::ALL {
                        let f = [SlicePin::F1, SlicePin::F2, SlicePin::F3, SlicePin::F4]
                            [idx as usize % 4];
                        let g = [SlicePin::G1, SlicePin::G2, SlicePin::G3, SlicePin::G4]
                            [idx as usize % 4];
                        for pin in [f, g] {
                            push(
                                out,
                                u,
                                wire,
                                Wire::new(u, WireKind::SlicePin { slice, pin }),
                            );
                        }
                        let special = match idx {
                            0 => Some(SlicePin::BX),
                            1 => Some(SlicePin::BY),
                            2 => Some(SlicePin::CE),
                            3 => Some(SlicePin::SR),
                            _ => None,
                        };
                        if let Some(pin) = special {
                            push(
                                out,
                                u,
                                wire,
                                Wire::new(u, WireKind::SlicePin { slice, pin }),
                            );
                        }
                    }
                    // Switch-box bounce: continue straight or turn (never
                    // reverse), onto the same track or the next one up —
                    // the index shift is what lets a route move between
                    // track classes to reach any input pin.
                    for d2 in Dir::ALL {
                        if d2 == dir.opposite() {
                            continue;
                        }
                        for idx2 in [idx, (idx + 1) % SINGLES_PER_DIR as u8] {
                            let s2 = Wire::new(u, WireKind::Single { dir: d2, idx: idx2 });
                            if self.wire_exists(s2) {
                                push(out, u, wire, s2);
                            }
                        }
                    }
                } else if self.is_iob(u) {
                    // Singles arriving on the ring can reach the pad whose
                    // index matches the track group.
                    let pad = idx % PADS_PER_IOB as u8;
                    push(out, u, wire, Wire::new(u, WireKind::PadOut(pad)));
                }
            }
            WireKind::Hex { dir, idx } => {
                let (dr, dc) = dir.delta();
                for dist in [HEX_SPAN / 2, HEX_SPAN] {
                    let u = TileCoord::new(t.row + dr * dist, t.col + dc * dist);
                    if !self.is_clb(u) {
                        continue;
                    }
                    // Continue in the same direction on two single tracks,
                    // or turn onto the perpendicular tracks.
                    for s_idx in [idx, idx + HEX_PER_DIR as u8] {
                        let s = Wire::new(u, WireKind::Single { dir, idx: s_idx });
                        if self.wire_exists(s) {
                            push(out, u, wire, s);
                        }
                    }
                    for d2 in Dir::ALL {
                        if d2 == dir || d2 == dir.opposite() {
                            continue;
                        }
                        let s = Wire::new(u, WireKind::Single { dir: d2, idx });
                        if self.wire_exists(s) {
                            push(out, u, wire, s);
                        }
                    }
                }
            }
            WireKind::Long { horiz, idx } => {
                // Taps every LONG_TAP_SPACING tiles along the track.
                let track: Vec<TileCoord> = if horiz {
                    (0..self.cols).map(|c| TileCoord::new(t.row, c)).collect()
                } else {
                    (0..self.rows).map(|r| TileCoord::new(r, t.col)).collect()
                };
                for u in track {
                    let along = if horiz { u.col } else { u.row };
                    if along % LONG_TAP_SPACING != 2 * idx as i32 {
                        continue;
                    }
                    let dirs = if horiz {
                        [Dir::East, Dir::West]
                    } else {
                        [Dir::North, Dir::South]
                    };
                    for dir in dirs {
                        let h = Wire::new(u, WireKind::Hex { dir, idx });
                        if self.wire_exists(h) {
                            push(out, u, wire, h);
                        }
                        let s = Wire::new(u, WireKind::Single { dir, idx });
                        if self.wire_exists(s) {
                            push(out, u, wire, s);
                        }
                    }
                }
            }
            WireKind::PadIn(p) => {
                if let Some(dir) = self.iob_fabric_dir(t) {
                    for idx in [p, p + PADS_PER_IOB as u8] {
                        let s = Wire::new(t, WireKind::Single { dir, idx });
                        if self.wire_exists(s) {
                            push(out, t, wire, s);
                        }
                    }
                }
                // Any pad can reach any global clock buffer (BUFG input
                // selection).
                for k in 0..GLOBAL_CLOCKS as u8 {
                    push(out, t, wire, self.global_clock(k));
                }
            }
            WireKind::GlobalClock(_) => {
                // The clock tree reaches every slice CLK pin. The enable
                // bit lives in the destination tile's column.
                for r in 0..self.rows {
                    for c in 0..self.cols {
                        let u = TileCoord::new(r, c);
                        for slice in SliceId::ALL {
                            push(
                                out,
                                u,
                                wire,
                                Wire::new(
                                    u,
                                    WireKind::SlicePin {
                                        slice,
                                        pin: SlicePin::Clk,
                                    },
                                ),
                            );
                        }
                    }
                }
            }
            WireKind::PadOut(_) => {} // sink
        }
    }

    /// All PIPs whose configuration bit lives in `tile`, in a stable
    /// canonical order. This order defines the bit assignment used by the
    /// `jbits` crate, so it must never change gratuitously.
    pub fn tile_pips(&self, tile: TileCoord) -> Vec<Pip> {
        let mut pips = Vec::new();
        match tile.kind(self.device) {
            TileKind::Clb => {
                // 1. Locally driven wires: slice outputs, OMUX fan-out.
                for slice in SliceId::ALL {
                    for pin in [SlicePin::X, SlicePin::Y, SlicePin::XQ, SlicePin::YQ] {
                        self.downhill(
                            Wire::new(tile, WireKind::SlicePin { slice, pin }),
                            &mut pips,
                        );
                    }
                }
                for j in 0..OMUX_COUNT as u8 {
                    self.downhill(Wire::new(tile, WireKind::Omux(j)), &mut pips);
                }
                // 2. Incoming singles (input muxes + bounces located here).
                self.incoming_single_pips(tile, &mut pips);
                // 3. Hex taps landing here.
                for dir in Dir::ALL {
                    let (dr, dc) = dir.delta();
                    for dist in [HEX_SPAN / 2, HEX_SPAN] {
                        let src = TileCoord::new(tile.row - dr * dist, tile.col - dc * dist);
                        for idx in 0..HEX_PER_DIR as u8 {
                            let h = Wire::new(src, WireKind::Hex { dir, idx });
                            if self.wire_exists(h) {
                                let mut tmp = Vec::new();
                                self.downhill(h, &mut tmp);
                                pips.extend(tmp.into_iter().filter(|p| p.loc == tile));
                            }
                        }
                    }
                }
                // 4. Long-line taps at this tile.
                for idx in 0..LONGS_PER_TRACK as u8 {
                    for long in [self.long_h(tile.row, idx), self.long_v(tile.col, idx)] {
                        let mut tmp = Vec::new();
                        self.downhill(long, &mut tmp);
                        pips.extend(tmp.into_iter().filter(|p| p.loc == tile));
                    }
                }
                // 5. Global clock spine taps.
                for k in 0..GLOBAL_CLOCKS as u8 {
                    for slice in SliceId::ALL {
                        pips.push(Pip {
                            loc: tile,
                            from: self.global_clock(k),
                            to: Wire::new(
                                tile,
                                WireKind::SlicePin {
                                    slice,
                                    pin: SlicePin::Clk,
                                },
                            ),
                        });
                    }
                }
            }
            TileKind::IobTop | TileKind::IobBottom | TileKind::IobLeft | TileKind::IobRight => {
                for p in 0..PADS_PER_IOB as u8 {
                    self.downhill(Wire::new(tile, WireKind::PadIn(p)), &mut pips);
                }
                self.incoming_single_pips(tile, &mut pips);
            }
            _ => {}
        }
        pips
    }

    /// PIPs located at `tile` that are fed by singles arriving from
    /// neighbouring tiles.
    fn incoming_single_pips(&self, tile: TileCoord, pips: &mut Vec<Pip>) {
        for dir in Dir::ALL {
            let (dr, dc) = dir.delta();
            let src = TileCoord::new(tile.row - dr, tile.col - dc);
            for idx in 0..SINGLES_PER_DIR as u8 {
                let s = Wire::new(src, WireKind::Single { dir, idx });
                if self.wire_exists(s) {
                    let mut tmp = Vec::new();
                    self.downhill(s, &mut tmp);
                    pips.extend(tmp.into_iter().filter(|p| p.loc == tile));
                }
            }
        }
    }

    /// Locate the PIP `(from, to)` if it exists in the fabric, returning
    /// the canonical `Pip` (with its location tile).
    pub fn find_pip(&self, from: Wire, to: Wire) -> Option<Pip> {
        if !self.wire_exists(from) {
            return None;
        }
        let mut tmp = Vec::new();
        self.downhill(from, &mut tmp);
        tmp.into_iter().find(|p| p.to == to)
    }

    /// Index of `pip` within `tile_pips(pip.loc)`, used for configuration
    /// bit assignment. `None` if the pip does not exist.
    pub fn pip_index(&self, pip: &Pip) -> Option<usize> {
        self.tile_pips(pip.loc)
            .iter()
            .position(|p| p.from == pip.from && p.to == pip.to)
    }

    /// Number of PIPs located in `tile`.
    pub fn tile_pip_count(&self, tile: TileCoord) -> usize {
        self.tile_pips(tile).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> RoutingGraph {
        RoutingGraph::new(Device::XCV50)
    }

    #[test]
    fn wire_name_roundtrip() {
        let g = graph();
        let wires = [
            Wire::new(
                TileCoord::new(2, 22),
                WireKind::SlicePin {
                    slice: SliceId::S0,
                    pin: SlicePin::G3,
                },
            ),
            Wire::new(TileCoord::new(0, 0), WireKind::Omux(7)),
            Wire::new(
                TileCoord::new(4, 4),
                WireKind::Single {
                    dir: Dir::East,
                    idx: 5,
                },
            ),
            Wire::new(
                TileCoord::new(4, 4),
                WireKind::Hex {
                    dir: Dir::North,
                    idx: 2,
                },
            ),
            g.long_h(3, 1),
            g.long_v(7, 0),
            Wire::new(TileCoord::new(-1, 3), WireKind::PadIn(2)),
            Wire::new(TileCoord::new(16, 3), WireKind::PadOut(0)),
            g.global_clock(3),
        ];
        for w in wires {
            assert!(g.wire_exists(w), "{w} should exist");
            assert_eq!(Wire::parse(&w.name()), Some(w), "roundtrip {w}");
        }
    }

    #[test]
    fn edge_singles_do_not_leave_device() {
        let g = graph();
        // A single heading north from the top CLB row lands on the IOB
        // ring: valid. One heading north *from* the top IOB row would leave
        // the device: invalid.
        let from_top_clb = Wire::new(
            TileCoord::new(0, 5),
            WireKind::Single {
                dir: Dir::North,
                idx: 0,
            },
        );
        assert!(g.wire_exists(from_top_clb));
        let from_top_iob = Wire::new(
            TileCoord::new(-1, 5),
            WireKind::Single {
                dir: Dir::North,
                idx: 0,
            },
        );
        assert!(!g.wire_exists(from_top_iob));
        // IOB tiles only drive towards the fabric.
        let sideways_iob = Wire::new(
            TileCoord::new(-1, 5),
            WireKind::Single {
                dir: Dir::East,
                idx: 0,
            },
        );
        assert!(!g.wire_exists(sideways_iob));
    }

    #[test]
    fn slice_output_reaches_neighbor_input_in_three_pips() {
        // X -> OMUX -> single east -> F pin of the tile one to the east.
        let g = graph();
        let t = TileCoord::new(5, 5);
        let x = Wire::new(
            t,
            WireKind::SlicePin {
                slice: SliceId::S0,
                pin: SlicePin::X,
            },
        );
        let mut p1 = Vec::new();
        g.downhill(x, &mut p1);
        assert!(!p1.is_empty());
        let omux = p1[0].to;
        let mut p2 = Vec::new();
        g.downhill(omux, &mut p2);
        let single = p2
            .iter()
            .find(|p| matches!(p.to.kind, WireKind::Single { dir: Dir::East, .. }))
            .expect("omux drives an east single")
            .to;
        let mut p3 = Vec::new();
        g.downhill(single, &mut p3);
        let dest = TileCoord::new(5, 6);
        assert!(
            p3.iter().any(|p| p.to.tile == dest
                && matches!(
                    p.to.kind,
                    WireKind::SlicePin { pin, .. } if !pin.is_output()
                )),
            "single reaches an input pin of {dest}"
        );
    }

    #[test]
    fn tile_pips_are_stable_unique_and_within_budget() {
        let g = graph();
        let t = TileCoord::new(8, 12);
        let pips = g.tile_pips(t);
        let again = g.tile_pips(t);
        assert_eq!(pips, again, "enumeration must be deterministic");
        let mut set = std::collections::HashSet::new();
        for p in &pips {
            assert_eq!(p.loc, t);
            assert!(set.insert((p.from, p.to)), "duplicate pip {p}");
        }
        // The CLB column offers 48 frames x 18 bits = 864 bits per CLB;
        // logic uses ~110, so pips must stay under ~750.
        assert!(
            pips.len() <= 720,
            "CLB tile has {} pips, exceeding the frame budget",
            pips.len()
        );
        assert!(pips.len() >= 200, "suspiciously sparse switch box");
    }

    #[test]
    fn iob_tile_pips_within_budget() {
        let g = graph();
        for t in [
            TileCoord::new(-1, 4),
            TileCoord::new(16, 4),
            TileCoord::new(4, -1),
            TileCoord::new(4, 24),
        ] {
            let pips = g.tile_pips(t);
            assert!(!pips.is_empty());
            assert!(pips.len() < 100, "{t}: {} pips", pips.len());
            assert!(pips.iter().all(|p| p.loc == t));
        }
    }

    #[test]
    fn find_pip_and_index_agree_with_enumeration() {
        let g = graph();
        let t = TileCoord::new(3, 3);
        let pips = g.tile_pips(t);
        for (i, p) in pips.iter().enumerate().step_by(17) {
            let found = g.find_pip(p.from, p.to).expect("pip exists");
            assert_eq!(found, *p);
            assert_eq!(g.pip_index(p), Some(i));
        }
    }

    #[test]
    fn global_clock_reaches_every_clk_pin() {
        let g = graph();
        let mut out = Vec::new();
        g.downhill(g.global_clock(0), &mut out);
        let geo = Device::XCV50.geometry();
        assert_eq!(out.len(), geo.clb_rows * geo.clb_cols * 2);
    }

    #[test]
    fn pad_in_drives_fabric_and_clock() {
        let g = graph();
        let w = Wire::new(TileCoord::new(-1, 7), WireKind::PadIn(1));
        let mut out = Vec::new();
        g.downhill(w, &mut out);
        assert!(out.iter().any(|p| matches!(
            p.to.kind,
            WireKind::Single {
                dir: Dir::South,
                ..
            }
        )));
        assert!(out
            .iter()
            .any(|p| matches!(p.to.kind, WireKind::GlobalClock(_))));
    }

    #[test]
    fn long_lines_tap_periodically() {
        let g = graph();
        let mut out = Vec::new();
        g.downhill(g.long_h(6, 0), &mut out);
        assert!(!out.is_empty());
        for p in &out {
            assert_eq!(p.loc.row, 6);
            assert_eq!(p.loc.col % LONG_TAP_SPACING, 0);
        }
        out.clear();
        g.downhill(g.long_h(6, 1), &mut out);
        for p in &out {
            assert_eq!(p.loc.col % LONG_TAP_SPACING, 2);
        }
    }
}
