//! Tile grid: coordinates for CLB and IOB tiles and the Virtex site-naming
//! convention (`CLB_R3C23.S0`) used by XDL files.
//!
//! CLB tiles occupy rows `0..clb_rows` and columns `0..clb_cols` with row 0
//! at the *top* of the die (matching the `R1C1`-is-top-left convention of
//! the Xilinx tools). IOB tiles form a ring one step outside the CLB
//! array: row −1 (top), row `clb_rows` (bottom), column −1 (left) and
//! column `clb_cols` (right).

use crate::family::Device;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the two slices in a CLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SliceId {
    /// Slice 0 (the `.S0` site).
    S0,
    /// Slice 1 (the `.S1` site).
    S1,
}

impl SliceId {
    /// Both slices, in index order.
    pub const ALL: [SliceId; 2] = [SliceId::S0, SliceId::S1];

    /// Numeric index (0 or 1).
    pub fn index(self) -> usize {
        match self {
            SliceId::S0 => 0,
            SliceId::S1 => 1,
        }
    }

    /// Inverse of [`Self::index`].
    pub fn from_index(i: usize) -> Option<SliceId> {
        match i {
            0 => Some(SliceId::S0),
            1 => Some(SliceId::S1),
            _ => None,
        }
    }
}

/// What occupies a grid position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// A configurable logic block (two slices).
    Clb,
    /// An I/O block tile on the named edge.
    IobTop,
    /// Bottom-edge IOB tile.
    IobBottom,
    /// Left-edge IOB tile.
    IobLeft,
    /// Right-edge IOB tile.
    IobRight,
    /// A corner of the IOB ring (no user resources).
    Corner,
    /// Outside the device entirely.
    OffDevice,
}

/// A tile position. CLBs sit at `0..rows × 0..cols`; the IOB ring uses
/// row/column −1 and `rows`/`cols`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileCoord {
    /// Row, top = 0. IOB ring uses −1 and `clb_rows`.
    pub row: i32,
    /// Column, left = 0. IOB ring uses −1 and `clb_cols`.
    pub col: i32,
}

impl TileCoord {
    /// Construct a coordinate.
    pub fn new(row: i32, col: i32) -> Self {
        TileCoord { row, col }
    }

    /// Classify this coordinate for `device`.
    pub fn kind(self, device: Device) -> TileKind {
        let g = device.geometry();
        let (rows, cols) = (g.clb_rows as i32, g.clb_cols as i32);
        let in_r = (0..rows).contains(&self.row);
        let in_c = (0..cols).contains(&self.col);
        match (self.row, self.col) {
            _ if in_r && in_c => TileKind::Clb,
            (-1, c) if (0..cols).contains(&c) => TileKind::IobTop,
            (r, c) if r == rows && (0..cols).contains(&c) => TileKind::IobBottom,
            (r, -1) if (0..rows).contains(&r) => TileKind::IobLeft,
            (r, c) if c == cols && (0..rows).contains(&r) => TileKind::IobRight,
            (-1, -1) => TileKind::Corner,
            (-1, c) if c == cols => TileKind::Corner,
            (r, -1) if r == rows => TileKind::Corner,
            (r, c) if r == rows && c == cols => TileKind::Corner,
            _ => TileKind::OffDevice,
        }
    }

    /// Whether this is a CLB tile on `device`.
    pub fn is_clb(self, device: Device) -> bool {
        self.kind(device) == TileKind::Clb
    }

    /// Whether this is any IOB tile on `device`.
    pub fn is_iob(self, device: Device) -> bool {
        matches!(
            self.kind(device),
            TileKind::IobTop | TileKind::IobBottom | TileKind::IobLeft | TileKind::IobRight
        )
    }

    /// Manhattan distance to another tile.
    pub fn manhattan(self, other: TileCoord) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

impl fmt::Display for TileCoord {
    /// Xilinx convention: 1-based `R{row}C{col}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}C{}", self.row + 1, self.col + 1)
    }
}

/// A slice site: CLB tile plus slice index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SliceCoord {
    /// The CLB tile.
    pub tile: TileCoord,
    /// Which slice in the tile.
    pub slice: SliceId,
}

impl SliceCoord {
    /// Construct a slice site.
    pub fn new(tile: TileCoord, slice: SliceId) -> Self {
        SliceCoord { tile, slice }
    }

    /// Xilinx site name, e.g. `CLB_R3C23.S0` (rows/cols are 1-based in
    /// names).
    pub fn site_name(self) -> String {
        format!(
            "CLB_R{}C{}.S{}",
            self.tile.row + 1,
            self.tile.col + 1,
            self.slice.index()
        )
    }

    /// Parse a site name produced by [`Self::site_name`] (also accepts the
    /// bare `R3C23.S0` form XDL placement fields use).
    pub fn parse_site_name(s: &str) -> Option<SliceCoord> {
        let s = s.strip_prefix("CLB_").unwrap_or(s);
        let (rc, slice) = s.split_once(".S")?;
        let slice = SliceId::from_index(slice.parse::<usize>().ok()?)?;
        let rc = rc.strip_prefix('R')?;
        let (row, col) = rc.split_once('C')?;
        let row: i32 = row.parse().ok()?;
        let col: i32 = col.parse().ok()?;
        if row < 1 || col < 1 {
            return None;
        }
        Some(SliceCoord::new(TileCoord::new(row - 1, col - 1), slice))
    }
}

impl fmt::Display for SliceCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.site_name())
    }
}

/// An IOB site: IOB ring tile plus pad index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IobCoord {
    /// The IOB ring tile.
    pub tile: TileCoord,
    /// Pad index within the tile (`0..routing::PADS_PER_IOB`).
    pub pad: u8,
}

impl IobCoord {
    /// Construct an IOB site.
    pub fn new(tile: TileCoord, pad: u8) -> Self {
        IobCoord { tile, pad }
    }

    /// Site name, e.g. `IOB_R0C6.P2` (the ring uses row/column 0 and
    /// `rows+1`/`cols+1` in 1-based naming).
    pub fn site_name(self) -> String {
        format!(
            "IOB_R{}C{}.P{}",
            self.tile.row + 1,
            self.tile.col + 1,
            self.pad
        )
    }

    /// Parse a site name produced by [`Self::site_name`].
    pub fn parse_site_name(s: &str) -> Option<IobCoord> {
        let s = s.strip_prefix("IOB_")?;
        let (rc, pad) = s.split_once(".P")?;
        let pad: u8 = pad.parse().ok()?;
        let rc = rc.strip_prefix('R')?;
        let (row, col) = rc.split_once('C')?;
        let row: i32 = row.parse().ok()?;
        let col: i32 = col.parse().ok()?;
        Some(IobCoord::new(TileCoord::new(row - 1, col - 1), pad))
    }
}

impl fmt::Display for IobCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.site_name())
    }
}

/// Iterate over every CLB tile of `device` in row-major order.
pub fn clb_tiles(device: Device) -> impl Iterator<Item = TileCoord> {
    let g = device.geometry();
    (0..g.clb_rows as i32)
        .flat_map(move |r| (0..g.clb_cols as i32).map(move |c| TileCoord::new(r, c)))
}

/// Iterate over every IOB tile of `device` (top, bottom, left, right).
pub fn iob_tiles(device: Device) -> impl Iterator<Item = TileCoord> {
    let g = device.geometry();
    let (rows, cols) = (g.clb_rows as i32, g.clb_cols as i32);
    let top = (0..cols).map(move |c| TileCoord::new(-1, c));
    let bottom = (0..cols).map(move |c| TileCoord::new(rows, c));
    let left = (0..rows).map(move |r| TileCoord::new(r, -1));
    let right = (0..rows).map(move |r| TileCoord::new(r, cols));
    top.chain(bottom).chain(left).chain(right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_tiles() {
        let d = Device::XCV50; // 16 x 24
        assert_eq!(TileCoord::new(0, 0).kind(d), TileKind::Clb);
        assert_eq!(TileCoord::new(15, 23).kind(d), TileKind::Clb);
        assert_eq!(TileCoord::new(-1, 5).kind(d), TileKind::IobTop);
        assert_eq!(TileCoord::new(16, 5).kind(d), TileKind::IobBottom);
        assert_eq!(TileCoord::new(5, -1).kind(d), TileKind::IobLeft);
        assert_eq!(TileCoord::new(5, 24).kind(d), TileKind::IobRight);
        assert_eq!(TileCoord::new(-1, -1).kind(d), TileKind::Corner);
        assert_eq!(TileCoord::new(16, 24).kind(d), TileKind::Corner);
        assert_eq!(TileCoord::new(-2, 0).kind(d), TileKind::OffDevice);
        assert_eq!(TileCoord::new(0, 99).kind(d), TileKind::OffDevice);
    }

    #[test]
    fn site_name_matches_paper_example() {
        // The paper's XDL sample places an instance at "R3C23" slice S0,
        // i.e. site CLB_R3C23.S0.
        let sc = SliceCoord::new(TileCoord::new(2, 22), SliceId::S0);
        assert_eq!(sc.site_name(), "CLB_R3C23.S0");
        assert_eq!(SliceCoord::parse_site_name("CLB_R3C23.S0"), Some(sc));
        assert_eq!(SliceCoord::parse_site_name("R3C23.S0"), Some(sc));
    }

    #[test]
    fn site_name_rejects_garbage() {
        assert_eq!(SliceCoord::parse_site_name("CLB_R0C5.S0"), None);
        assert_eq!(SliceCoord::parse_site_name("CLB_R3C23.S2"), None);
        assert_eq!(SliceCoord::parse_site_name("TIOB_R3C23"), None);
        assert_eq!(SliceCoord::parse_site_name(""), None);
    }

    #[test]
    fn tile_census() {
        let d = Device::XCV50;
        assert_eq!(clb_tiles(d).count(), 16 * 24);
        assert_eq!(iob_tiles(d).count(), 2 * 24 + 2 * 16);
        assert!(clb_tiles(d).all(|t| t.is_clb(d)));
        assert!(iob_tiles(d).all(|t| t.is_iob(d)));
    }

    #[test]
    fn iob_site_name_roundtrip() {
        let io = IobCoord::new(TileCoord::new(-1, 5), 2);
        assert_eq!(io.site_name(), "IOB_R0C6.P2");
        assert_eq!(IobCoord::parse_site_name("IOB_R0C6.P2"), Some(io));
        // Bottom ring of an XCV50 is row 16 -> named R17.
        let io = IobCoord::new(TileCoord::new(16, 0), 0);
        assert_eq!(io.site_name(), "IOB_R17C1.P0");
        assert_eq!(IobCoord::parse_site_name(&io.site_name()), Some(io));
        assert_eq!(IobCoord::parse_site_name("CLB_R1C1.S0"), None);
    }

    #[test]
    fn manhattan_distance() {
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(3, -4);
        assert_eq!(a.manhattan(b), 7);
        assert_eq!(b.manhattan(a), 7);
        assert_eq!(a.manhattan(a), 0);
    }
}
