//! Configuration geometry: the frame/column structure of the Virtex
//! configuration memory and the Frame Address Register (FAR) encoding.
//!
//! A Virtex device is configured through vertical *frames*, each one bit
//! wide and a full column tall. Frames are grouped into *columns* (a clock
//! column, one column per CLB column, two IOB columns, and BRAM columns)
//! and addressed by a `(block type, major, minor)` triple:
//!
//! * **block type** — 0 for the CLB address space (which also holds the
//!   clock and IOB columns), 1 for BRAM interconnect, 2 for BRAM content;
//! * **major** — the column within the block type. Major 0 of the CLB
//!   space is the center clock column; CLB columns then alternate
//!   right/left moving outwards from the center, followed by the right and
//!   left IOB columns;
//! * **minor** — the frame within the column.
//!
//! Per-column frame counts follow XAPP151: clock 8, CLB 48, IOB 54, BRAM
//! interconnect 27, BRAM content 64. The frame length is
//! `ceil(18 * (clb_rows + 2) / 32)` 32-bit words — 18 configuration bits
//! per CLB row plus one 18-bit pad slot at each end of the column for the
//! top/bottom IOB rows.

use crate::family::Device;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Frames in the center clock column.
pub const CLOCK_FRAMES: usize = 8;
/// Frames in one CLB column.
pub const CLB_FRAMES: usize = 48;
/// Frames in one IOB column.
pub const IOB_FRAMES: usize = 54;
/// Frames in one BRAM interconnect column.
pub const BRAM_INT_FRAMES: usize = 27;
/// Frames in one BRAM content column.
pub const BRAM_CONTENT_FRAMES: usize = 64;
/// Configuration bits per CLB row within one frame.
pub const BITS_PER_ROW: usize = 18;

/// The three Virtex configuration block types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BlockType {
    /// CLB address space: clock, CLB and IOB columns.
    Clb,
    /// Block-RAM interconnect columns.
    BramInterconnect,
    /// Block-RAM content columns.
    BramContent,
}

impl BlockType {
    /// Numeric encoding used in the FAR.
    pub fn encode(self) -> u32 {
        match self {
            BlockType::Clb => 0,
            BlockType::BramInterconnect => 1,
            BlockType::BramContent => 2,
        }
    }

    /// Decode from the FAR field.
    pub fn decode(v: u32) -> Option<BlockType> {
        match v {
            0 => Some(BlockType::Clb),
            1 => Some(BlockType::BramInterconnect),
            2 => Some(BlockType::BramContent),
            _ => None,
        }
    }
}

/// What a configuration column configures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnKind {
    /// The center global-clock column.
    Clock,
    /// A CLB column; the payload is the zero-based CLB array column it
    /// configures (0 = leftmost).
    Clb(usize),
    /// The right or left IOB column.
    Iob(Side),
    /// BRAM interconnect on the given side.
    BramInterconnect(Side),
    /// BRAM content on the given side.
    BramContent(Side),
}

/// Left or right half of the die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Right half (configured first: odd majors).
    Right,
    /// Left half (even majors above 0).
    Left,
}

/// One configuration column: a contiguous run of frames sharing a
/// `(block, major)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigColumn {
    /// What this column configures.
    pub kind: ColumnKind,
    /// Block type of the column.
    pub block: BlockType,
    /// Major address within the block type.
    pub major: u8,
    frames: usize,
    first_frame: usize,
}

impl ConfigColumn {
    /// Number of frames (minor addresses) in this column.
    pub fn frame_count(&self) -> usize {
        self.frames
    }

    /// Linear index of this column's minor-0 frame within the device's
    /// whole frame sequence.
    pub fn first_frame_index(&self) -> usize {
        self.first_frame
    }
}

/// A fully qualified frame address: `(block, major, minor)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameAddress {
    /// Block type.
    pub block: BlockType,
    /// Column within the block type.
    pub major: u8,
    /// Frame within the column.
    pub minor: u8,
}

impl FrameAddress {
    /// Construct a frame address.
    pub fn new(block: BlockType, major: u8, minor: u8) -> Self {
        FrameAddress {
            block,
            major,
            minor,
        }
    }

    /// Pack into the 32-bit FAR register encoding
    /// (`block[26:25] | major[24:17] | minor[16:9]`).
    pub fn to_word(self) -> u32 {
        (self.block.encode() << 25) | ((self.major as u32) << 17) | ((self.minor as u32) << 9)
    }

    /// Unpack from the 32-bit FAR register encoding.
    pub fn from_word(w: u32) -> Option<Self> {
        let block = BlockType::decode((w >> 25) & 0x3)?;
        Some(FrameAddress {
            block,
            major: ((w >> 17) & 0xff) as u8,
            minor: ((w >> 9) & 0xff) as u8,
        })
    }
}

impl fmt::Display for FrameAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/maj{}/min{}", self.block, self.major, self.minor)
    }
}

/// The complete configuration geometry of one device: the ordered column
/// list plus the frame length.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigGeometry {
    device: Device,
    columns: Vec<ConfigColumn>,
    frame_words: usize,
    total_frames: usize,
}

impl ConfigGeometry {
    /// Build the configuration geometry for `device`.
    pub fn for_device(device: Device) -> ConfigGeometry {
        let g = device.geometry();
        let frame_words = (BITS_PER_ROW * (g.clb_rows + 2)).div_ceil(32);

        let mut columns = Vec::new();
        // Block type 0, in major order: clock, CLB columns alternating
        // right/left from the center, then right IOB, left IOB.
        columns.push((ColumnKind::Clock, BlockType::Clb, CLOCK_FRAMES));
        let half = g.clb_cols / 2;
        for i in 0..g.clb_cols {
            // Major 1 => first column right of center, major 2 => first
            // column left of center, and so on outwards.
            let clb_col = if i % 2 == 0 {
                half + i / 2
            } else {
                half - 1 - i / 2
            };
            columns.push((ColumnKind::Clb(clb_col), BlockType::Clb, CLB_FRAMES));
        }
        columns.push((ColumnKind::Iob(Side::Right), BlockType::Clb, IOB_FRAMES));
        columns.push((ColumnKind::Iob(Side::Left), BlockType::Clb, IOB_FRAMES));
        // Block type 1: BRAM interconnect, right then left.
        for side in [Side::Right, Side::Left] {
            for _ in 0..g.bram_cols_per_side {
                columns.push((
                    ColumnKind::BramInterconnect(side),
                    BlockType::BramInterconnect,
                    BRAM_INT_FRAMES,
                ));
            }
        }
        // Block type 2: BRAM content, right then left.
        for side in [Side::Right, Side::Left] {
            for _ in 0..g.bram_cols_per_side {
                columns.push((
                    ColumnKind::BramContent(side),
                    BlockType::BramContent,
                    BRAM_CONTENT_FRAMES,
                ));
            }
        }

        // Assign majors within each block type in list order, and linear
        // first-frame indices across the whole sequence.
        let mut majors = [0u8; 3];
        let mut first = 0usize;
        let columns: Vec<ConfigColumn> = columns
            .into_iter()
            .map(|(kind, block, frames)| {
                let major = majors[block.encode() as usize];
                majors[block.encode() as usize] += 1;
                let col = ConfigColumn {
                    kind,
                    block,
                    major,
                    frames,
                    first_frame: first,
                };
                first += frames;
                col
            })
            .collect();

        ConfigGeometry {
            device,
            columns,
            frame_words,
            total_frames: first,
        }
    }

    /// The device this geometry describes.
    pub fn device(&self) -> Device {
        self.device
    }

    /// Frame length in 32-bit words.
    pub fn frame_words(&self) -> usize {
        self.frame_words
    }

    /// Total number of frames in the device.
    pub fn total_frames(&self) -> usize {
        self.total_frames
    }

    /// Total configuration payload in 32-bit words (frames × frame length).
    pub fn total_words(&self) -> usize {
        self.total_frames * self.frame_words
    }

    /// Iterate over the configuration columns in major order.
    pub fn columns(&self) -> impl Iterator<Item = &ConfigColumn> {
        self.columns.iter()
    }

    /// Find the column holding `far`, if the address is valid.
    pub fn column(&self, block: BlockType, major: u8) -> Option<&ConfigColumn> {
        self.columns
            .iter()
            .find(|c| c.block == block && c.major == major)
    }

    /// Map a frame address to the linear frame index used by
    /// [`crate::ConfigMemory`].
    pub fn frame_index(&self, far: FrameAddress) -> Option<usize> {
        let col = self.column(far.block, far.major)?;
        if (far.minor as usize) < col.frames {
            Some(col.first_frame + far.minor as usize)
        } else {
            None
        }
    }

    /// Inverse of [`Self::frame_index`].
    pub fn frame_address(&self, index: usize) -> Option<FrameAddress> {
        if index >= self.total_frames {
            return None;
        }
        // Columns are in increasing first_frame order by construction.
        let at = self.columns.partition_point(|c| c.first_frame <= index);
        let col = &self.columns[at.checked_sub(1)?];
        Some(FrameAddress {
            block: col.block,
            major: col.major,
            minor: (index - col.first_frame) as u8,
        })
    }

    /// The CLB-space major address configuring CLB array column `clb_col`
    /// (0 = leftmost). Returns `None` if out of range.
    pub fn major_for_clb_col(&self, clb_col: usize) -> Option<u8> {
        self.columns.iter().find_map(|c| match c.kind {
            ColumnKind::Clb(cc) if cc == clb_col => Some(c.major),
            _ => None,
        })
    }

    /// The CLB array column configured by CLB-space major `major`, if it is
    /// a CLB column (rather than clock or IOB).
    pub fn clb_col_for_major(&self, major: u8) -> Option<usize> {
        self.column(BlockType::Clb, major)
            .and_then(|c| match c.kind {
                ColumnKind::Clb(cc) => Some(cc),
                _ => None,
            })
    }

    /// Bit offset of CLB row `row` inside a frame (row 0 is the top CLB
    /// row, which sits below the top-IOB pad slot).
    pub fn row_bit_offset(&self, row: usize) -> usize {
        BITS_PER_ROW * (row + 1)
    }

    /// Number of addressable bits in one frame (including pad slots).
    pub fn frame_bits(&self) -> usize {
        self.frame_words * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_words_matches_formula() {
        for d in Device::ALL {
            let cfg = ConfigGeometry::for_device(d);
            let rows = d.geometry().clb_rows;
            assert_eq!(cfg.frame_words(), (18 * (rows + 2)).div_ceil(32));
        }
    }

    #[test]
    fn xcv50_column_census() {
        let cfg = ConfigGeometry::for_device(Device::XCV50);
        let clb_cols = cfg
            .columns()
            .filter(|c| matches!(c.kind, ColumnKind::Clb(_)))
            .count();
        assert_eq!(clb_cols, 24);
        let total = CLOCK_FRAMES
            + 24 * CLB_FRAMES
            + 2 * IOB_FRAMES
            + 2 * BRAM_INT_FRAMES
            + 2 * BRAM_CONTENT_FRAMES;
        assert_eq!(cfg.total_frames(), total);
    }

    #[test]
    fn majors_alternate_right_left_from_center() {
        let cfg = ConfigGeometry::for_device(Device::XCV50); // 24 CLB cols
        assert_eq!(cfg.clb_col_for_major(1), Some(12)); // first right of center
        assert_eq!(cfg.clb_col_for_major(2), Some(11)); // first left of center
        assert_eq!(cfg.clb_col_for_major(3), Some(13));
        assert_eq!(cfg.clb_col_for_major(4), Some(10));
        assert_eq!(cfg.clb_col_for_major(23), Some(23)); // rightmost
        assert_eq!(cfg.clb_col_for_major(24), Some(0)); // leftmost
        assert_eq!(cfg.clb_col_for_major(0), None); // clock column
    }

    #[test]
    fn every_clb_col_has_exactly_one_major() {
        for d in [Device::XCV50, Device::XCV300, Device::XCV1000] {
            let cfg = ConfigGeometry::for_device(d);
            let cols = d.geometry().clb_cols;
            let mut majors: Vec<u8> = (0..cols)
                .map(|c| cfg.major_for_clb_col(c).expect("major exists"))
                .collect();
            majors.sort_unstable();
            majors.dedup();
            assert_eq!(majors.len(), cols);
            for c in 0..cols {
                let m = cfg.major_for_clb_col(c).unwrap();
                assert_eq!(cfg.clb_col_for_major(m), Some(c));
            }
        }
    }

    #[test]
    fn frame_index_roundtrip_exhaustive_xcv50() {
        let cfg = ConfigGeometry::for_device(Device::XCV50);
        for idx in 0..cfg.total_frames() {
            let far = cfg.frame_address(idx).expect("address exists");
            assert_eq!(cfg.frame_index(far), Some(idx));
        }
        assert_eq!(cfg.frame_address(cfg.total_frames()), None);
    }

    #[test]
    fn far_word_roundtrip() {
        let far = FrameAddress::new(BlockType::BramContent, 3, 61);
        assert_eq!(FrameAddress::from_word(far.to_word()), Some(far));
        assert_eq!(FrameAddress::from_word(0x3 << 25), None); // block 3 invalid
    }

    #[test]
    fn invalid_minor_rejected() {
        let cfg = ConfigGeometry::for_device(Device::XCV100);
        let far = FrameAddress::new(BlockType::Clb, 0, CLOCK_FRAMES as u8);
        assert_eq!(cfg.frame_index(far), None);
    }

    #[test]
    fn row_bit_offsets_fit_in_frame() {
        for d in Device::ALL {
            let cfg = ConfigGeometry::for_device(d);
            let rows = d.geometry().clb_rows;
            let last = cfg.row_bit_offset(rows - 1) + BITS_PER_ROW;
            assert!(last <= cfg.frame_bits());
            // Bottom pad slot also fits.
            assert!(cfg.row_bit_offset(rows) + BITS_PER_ROW <= cfg.frame_bits());
        }
    }
}
