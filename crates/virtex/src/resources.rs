//! Typed configurable resources: the per-slice and per-IOB settings that a
//! JBits-style API reads and writes.
//!
//! The set mirrors the attributes visible in the paper's XDL sample
//! (`CKINV`, `DYMUX`, `G:…:#LUT:D=…`, `CEMUX`, `SRMUX`, `GYMUX`,
//! `SYNC_ATTR`, `SRFFMUX`, `INITY`, `FFY`, …): each resource is a small
//! bit-field with a documented width, and the `jbits` crate assigns every
//! `(tile, resource)` pair a fixed position inside the tile's
//! configuration frames.

use crate::grid::SliceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two 4-input lookup tables in a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LutId {
    /// The F LUT (drives X / XQ).
    F,
    /// The G LUT (drives Y / YQ).
    G,
}

impl LutId {
    /// Both LUTs, F first.
    pub const ALL: [LutId; 2] = [LutId::F, LutId::G];

    /// Numeric index (F = 0, G = 1).
    pub fn index(self) -> usize {
        match self {
            LutId::F => 0,
            LutId::G => 1,
        }
    }
}

impl fmt::Display for LutId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutId::F => f.write_str("F"),
            LutId::G => f.write_str("G"),
        }
    }
}

/// Generic multiplexer/attribute settings, shared by several resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MuxSetting {
    /// The mux is off / the attribute is at its default.
    Off,
    /// The mux selects its primary input (e.g. `CEMUX::CE`).
    Primary,
    /// The mux selects its secondary input (e.g. output of the other LUT).
    Secondary,
    /// Constant-one selection (e.g. `CEMUX::1`).
    One,
}

impl MuxSetting {
    /// Two-bit encoding.
    pub fn encode(self) -> u32 {
        match self {
            MuxSetting::Off => 0,
            MuxSetting::Primary => 1,
            MuxSetting::Secondary => 2,
            MuxSetting::One => 3,
        }
    }

    /// Decode from the two-bit field.
    pub fn decode(v: u32) -> Option<MuxSetting> {
        match v {
            0 => Some(MuxSetting::Off),
            1 => Some(MuxSetting::Primary),
            2 => Some(MuxSetting::Secondary),
            3 => Some(MuxSetting::One),
            _ => None,
        }
    }
}

/// A configurable setting within one slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SliceResource {
    /// 16-bit truth table of a LUT. Bit `i` is the output for input
    /// pattern `i` (`F1` = LSB of the pattern).
    Lut(LutId),
    /// Clock inversion (`CKINV`), 1 bit.
    CkInv,
    /// Clock-enable mux (`CEMUX`): off / CE pin / — / constant 1. 2 bits.
    CeMux,
    /// Set-reset mux (`SRMUX`): off / SR pin / — / constant 1. 2 bits.
    SrMux,
    /// BX input mux, 2 bits.
    BxMux,
    /// BY input mux, 2 bits.
    ByMux,
    /// FFX data mux (`DXMUX`): 0 = F-LUT output, 1 = BX bypass. 1 bit.
    DxMux,
    /// FFY data mux (`DYMUX`): 0 = G-LUT output, 1 = BY bypass. 1 bit.
    DyMux,
    /// X output mux (`FXMUX`): off / F LUT / bypass / carry. 2 bits.
    FxMux,
    /// Y output mux (`GYMUX`): off / G LUT / bypass / carry. 2 bits.
    GyMux,
    /// Synchronous vs asynchronous set/reset (`SYNC_ATTR`), 1 bit
    /// (1 = SYNC).
    SyncAttr,
    /// Set/reset polarity select (`SRFFMUX`), 1 bit.
    SrFfMux,
    /// FFX initial/reset state (`INITX`), 1 bit (1 = HIGH).
    InitX,
    /// FFY initial/reset state (`INITY`), 1 bit (1 = HIGH).
    InitY,
    /// FFX present/enabled, 1 bit.
    FfX,
    /// FFY present/enabled, 1 bit.
    FfY,
    /// FFX latch mode (vs edge-triggered), 1 bit.
    LatchX,
    /// FFY latch mode, 1 bit.
    LatchY,
}

impl SliceResource {
    /// Every slice resource, in the canonical order used for configuration
    /// bit assignment.
    pub const ALL: [SliceResource; 19] = [
        SliceResource::Lut(LutId::F),
        SliceResource::Lut(LutId::G),
        SliceResource::CkInv,
        SliceResource::CeMux,
        SliceResource::SrMux,
        SliceResource::BxMux,
        SliceResource::ByMux,
        SliceResource::DxMux,
        SliceResource::DyMux,
        SliceResource::FxMux,
        SliceResource::GyMux,
        SliceResource::SyncAttr,
        SliceResource::SrFfMux,
        SliceResource::InitX,
        SliceResource::InitY,
        SliceResource::FfX,
        SliceResource::FfY,
        SliceResource::LatchX,
        SliceResource::LatchY,
    ];

    /// Width of this resource's bit-field.
    pub fn bit_width(self) -> usize {
        match self {
            SliceResource::Lut(_) => 16,
            SliceResource::CeMux
            | SliceResource::SrMux
            | SliceResource::BxMux
            | SliceResource::ByMux
            | SliceResource::FxMux
            | SliceResource::GyMux => 2,
            _ => 1,
        }
    }

    /// XDL attribute name for this resource (as it appears in `cfg`
    /// strings).
    pub fn xdl_name(self) -> &'static str {
        match self {
            SliceResource::Lut(LutId::F) => "F",
            SliceResource::Lut(LutId::G) => "G",
            SliceResource::CkInv => "CKINV",
            SliceResource::CeMux => "CEMUX",
            SliceResource::SrMux => "SRMUX",
            SliceResource::BxMux => "BXMUX",
            SliceResource::ByMux => "BYMUX",
            SliceResource::DxMux => "DXMUX",
            SliceResource::DyMux => "DYMUX",
            SliceResource::FxMux => "FXMUX",
            SliceResource::GyMux => "GYMUX",
            SliceResource::SyncAttr => "SYNC_ATTR",
            SliceResource::SrFfMux => "SRFFMUX",
            SliceResource::InitX => "INITX",
            SliceResource::InitY => "INITY",
            SliceResource::FfX => "FFX",
            SliceResource::FfY => "FFY",
            SliceResource::LatchX => "LATCHX",
            SliceResource::LatchY => "LATCHY",
        }
    }
}

/// A slice resource qualified by which slice it lives in: the unit of
/// JBits `set`/`get` calls for logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClbResource {
    /// Which slice of the CLB.
    pub slice: SliceId,
    /// Which setting within the slice.
    pub res: SliceResource,
}

impl ClbResource {
    /// Construct a qualified resource.
    pub fn new(slice: SliceId, res: SliceResource) -> Self {
        ClbResource { slice, res }
    }

    /// Width of the bit-field.
    pub fn bit_width(self) -> usize {
        self.res.bit_width()
    }

    /// Enumerate every `(slice, resource)` pair in canonical order.
    pub fn all() -> impl Iterator<Item = ClbResource> {
        SliceId::ALL.into_iter().flat_map(|s| {
            SliceResource::ALL
                .into_iter()
                .map(move |r| ClbResource::new(s, r))
        })
    }

    /// Total configuration bits used by slice logic in one CLB.
    pub fn total_bits() -> usize {
        ClbResource::all().map(|r| r.bit_width()).sum()
    }
}

/// A configurable setting within one IOB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IobResource {
    /// Input path enabled, 1 bit.
    InputEnable,
    /// Output driver enabled, 1 bit.
    OutputEnable,
    /// Output slew rate (0 = slow, 1 = fast), 1 bit.
    Slew,
    /// Pull resistor mode: 0 none, 1 pull-up, 2 pull-down, 3 keeper.
    /// 2 bits.
    PullMode,
    /// Input flip-flop enabled, 1 bit.
    InputFf,
    /// Output flip-flop enabled, 1 bit.
    OutputFf,
}

impl IobResource {
    /// Every IOB resource in canonical order.
    pub const ALL: [IobResource; 6] = [
        IobResource::InputEnable,
        IobResource::OutputEnable,
        IobResource::Slew,
        IobResource::PullMode,
        IobResource::InputFf,
        IobResource::OutputFf,
    ];

    /// Width of the bit-field.
    pub fn bit_width(self) -> usize {
        match self {
            IobResource::PullMode => 2,
            _ => 1,
        }
    }
}

/// A resource value: an unsigned integer constrained to the resource's
/// width. 16 bits (a LUT truth table) is the widest field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceValue {
    bits: u32,
    width: usize,
}

impl ResourceValue {
    /// Construct a value, masking to `width` bits. Panics if `width > 32`.
    pub fn new(bits: u32, width: usize) -> Self {
        assert!(width <= 32, "resource fields are at most 32 bits");
        let mask = if width == 32 { !0 } else { (1u32 << width) - 1 };
        ResourceValue {
            bits: bits & mask,
            width,
        }
    }

    /// A single-bit value.
    pub fn bit(b: bool) -> Self {
        ResourceValue::new(b as u32, 1)
    }

    /// A 16-bit LUT truth table.
    pub fn lut(table: u16) -> Self {
        ResourceValue::new(table as u32, 16)
    }

    /// The raw bits.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The field width.
    pub fn width(self) -> usize {
        self.width
    }

    /// The value as a bool (for 1-bit fields).
    pub fn as_bool(self) -> bool {
        self.bits != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_logic_fits_generous_budget() {
        // 2 slices worth of logic must fit well inside one CLB's share of
        // the configuration column (48 frames x 18 bits = 864 bits).
        let total = ClbResource::total_bits();
        assert!(total < 200, "slice logic uses {total} bits");
        assert_eq!(
            total,
            2 * (16 + 16 + 1 + 2 + 2 + 2 + 2 + 1 + 1 + 2 + 2 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1)
        );
    }

    #[test]
    fn resource_enumeration_is_stable_and_unique() {
        let all: Vec<ClbResource> = ClbResource::all().collect();
        assert_eq!(all.len(), 38);
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
        assert_eq!(
            all[0],
            ClbResource::new(SliceId::S0, SliceResource::Lut(LutId::F))
        );
    }

    #[test]
    fn value_masks_to_width() {
        let v = ResourceValue::new(0xffff_ffff, 2);
        assert_eq!(v.bits(), 0b11);
        assert_eq!(ResourceValue::bit(true).bits(), 1);
        assert_eq!(ResourceValue::lut(0xCAFE).bits(), 0xCAFE);
        assert_eq!(ResourceValue::lut(0xCAFE).width(), 16);
    }

    #[test]
    fn mux_setting_roundtrip() {
        for m in [
            MuxSetting::Off,
            MuxSetting::Primary,
            MuxSetting::Secondary,
            MuxSetting::One,
        ] {
            assert_eq!(MuxSetting::decode(m.encode()), Some(m));
        }
        assert_eq!(MuxSetting::decode(4), None);
    }

    #[test]
    fn xdl_names_match_paper_sample() {
        // Attribute names that appear in the paper's example cfg string.
        for (r, name) in [
            (SliceResource::CkInv, "CKINV"),
            (SliceResource::DyMux, "DYMUX"),
            (SliceResource::CeMux, "CEMUX"),
            (SliceResource::SrMux, "SRMUX"),
            (SliceResource::GyMux, "GYMUX"),
            (SliceResource::SyncAttr, "SYNC_ATTR"),
            (SliceResource::SrFfMux, "SRFFMUX"),
            (SliceResource::InitY, "INITY"),
            (SliceResource::FfY, "FFY"),
        ] {
            assert_eq!(r.xdl_name(), name);
        }
    }
}
