//! FAR major-address arithmetic at column seams — the math the
//! relocation engine leans on. Exercised at both device extremes
//! (XCV50, XCV1000): the clock↔CLB↔IOB seams of the CLB block, the
//! right/left side seam of the BRAM blocks, and the block-type seams in
//! linear frame-index space. Any off-by-one here relocates a partial
//! into a neighbouring column silently, so every edge is pinned.

use virtex::{BlockType, ColumnKind, ConfigGeometry, Device, FrameAddress};

const EXTREMES: [Device; 2] = [Device::XCV50, Device::XCV1000];

#[test]
fn clb_major_col_bijection_covers_the_whole_array() {
    for device in EXTREMES {
        let g = device.config_geometry();
        let cols = device.geometry().clb_cols;
        // Every CLB array column has exactly one major, and the map
        // round-trips both ways.
        let mut seen = vec![false; cols];
        for major in 0..=u8::MAX {
            if let Some(c) = g.clb_col_for_major(major) {
                assert!(!seen[c], "{device:?}: column {c} claimed twice");
                seen[c] = true;
                assert_eq!(g.major_for_clb_col(c), Some(major), "{device:?}");
            }
        }
        assert!(seen.iter().all(|&s| s), "{device:?}: unmapped CLB column");
        // CLB majors are exactly 1..=clb_cols: major 0 is the clock
        // column, majors clb_cols+1/+2 are the IOB columns.
        assert_eq!(g.clb_col_for_major(0), None, "{device:?}: clock");
        assert!(g.clb_col_for_major(cols as u8).is_some(), "{device:?}");
        assert_eq!(
            g.clb_col_for_major(cols as u8 + 1),
            None,
            "{device:?}: right IOB"
        );
        assert_eq!(
            g.clb_col_for_major(cols as u8 + 2),
            None,
            "{device:?}: left IOB"
        );
        assert_eq!(
            g.clb_col_for_major(cols as u8 + 3),
            None,
            "{device:?}: past IOB"
        );
        // The alternation lands the array edges on the two highest CLB
        // majors: rightmost column on clb_cols-1, leftmost on clb_cols.
        assert_eq!(
            g.major_for_clb_col(cols - 1),
            Some(cols as u8 - 1),
            "{device:?}"
        );
        assert_eq!(g.major_for_clb_col(0), Some(cols as u8), "{device:?}");
        // Center seam: major 1 is the first column right of center.
        assert_eq!(g.clb_col_for_major(1), Some(cols / 2), "{device:?}");
        assert_eq!(g.clb_col_for_major(2), Some(cols / 2 - 1), "{device:?}");
        // Out-of-array queries refuse instead of wrapping.
        assert_eq!(g.major_for_clb_col(cols), None, "{device:?}");
    }
}

#[test]
fn linear_frame_space_is_contiguous_across_every_column_seam() {
    for device in EXTREMES {
        let g = device.config_geometry();
        let mut cols: Vec<_> = g.columns().collect();
        cols.sort_by_key(|c| c.first_frame_index());
        assert_eq!(cols[0].first_frame_index(), 0, "{device:?}");
        for w in cols.windows(2) {
            assert_eq!(
                w[0].first_frame_index() + w[0].frame_count(),
                w[1].first_frame_index(),
                "{device:?}: gap or overlap between {:?}/maj{} and {:?}/maj{}",
                w[0].block,
                w[0].major,
                w[1].block,
                w[1].major,
            );
        }
        let last = cols.last().unwrap();
        assert_eq!(
            last.first_frame_index() + last.frame_count(),
            g.total_frames(),
            "{device:?}"
        );
    }
}

#[test]
fn block_type_seams_sit_where_the_far_ordering_says() {
    for device in EXTREMES {
        let g = device.config_geometry();
        // All Clb-space frames precede all BRAM-interconnect frames,
        // which precede all BRAM-content frames.
        let max_of = |b: BlockType| {
            g.columns()
                .filter(|c| c.block == b)
                .map(|c| c.first_frame_index() + c.frame_count())
                .max()
                .unwrap()
        };
        let min_of = |b: BlockType| {
            g.columns()
                .filter(|c| c.block == b)
                .map(|c| c.first_frame_index())
                .min()
                .unwrap()
        };
        let clb_end = max_of(BlockType::Clb);
        let bi_start = min_of(BlockType::BramInterconnect);
        let bi_end = max_of(BlockType::BramInterconnect);
        let bc_start = min_of(BlockType::BramContent);
        assert_eq!(clb_end, bi_start, "{device:?}: Clb→BramInterconnect seam");
        assert_eq!(bi_end, bc_start, "{device:?}: interconnect→content seam");

        // Crossing a block seam by one frame changes the block type and
        // resets the minor to zero.
        let before = g.frame_address(bi_start - 1).unwrap();
        let after = g.frame_address(bi_start).unwrap();
        assert_eq!(before.block, BlockType::Clb, "{device:?}");
        assert_eq!(after.block, BlockType::BramInterconnect, "{device:?}");
        assert_eq!(after.minor, 0, "{device:?}");
    }
}

#[test]
fn far_round_trips_at_every_column_edge() {
    for device in EXTREMES {
        let g = device.config_geometry();
        for col in g.columns() {
            for minor in [0, col.frame_count() - 1] {
                let far = FrameAddress::new(col.block, col.major, minor as u8);
                let idx = g.frame_index(far).unwrap_or_else(|| {
                    panic!(
                        "{device:?}: no index for {:?}/maj{}/min{minor}",
                        col.block, col.major
                    )
                });
                assert_eq!(g.frame_address(idx), Some(far), "{device:?}");
                // FAR word encoding round-trips too.
                assert_eq!(
                    FrameAddress::from_word(far.to_word()),
                    Some(far),
                    "{device:?}"
                );
            }
            // One past the last minor refuses instead of spilling into
            // the next column's frame 0.
            let past = FrameAddress::new(col.block, col.major, col.frame_count() as u8);
            assert_eq!(g.frame_index(past), None, "{device:?}: minor overrun");
        }
    }
}

#[test]
fn bram_sides_and_majors_are_pinned() {
    for device in EXTREMES {
        let g = device.config_geometry();
        for block in [BlockType::BramInterconnect, BlockType::BramContent] {
            let right = g.column(block, 0).unwrap();
            let left = g.column(block, 1).unwrap();
            match (right.kind, left.kind) {
                (ColumnKind::BramInterconnect(r), ColumnKind::BramInterconnect(l))
                | (ColumnKind::BramContent(r), ColumnKind::BramContent(l)) => {
                    assert_eq!(r, virtex::config::Side::Right, "{device:?}");
                    assert_eq!(l, virtex::config::Side::Left, "{device:?}");
                }
                other => panic!("{device:?}: unexpected kinds {other:?}"),
            }
            assert_eq!(right.frame_count(), left.frame_count(), "{device:?}");
            assert!(
                g.column(block, 2).is_none(),
                "{device:?}: phantom BRAM major"
            );
        }
        // Frame counts per XAPP151: 27 interconnect, 64 content.
        assert_eq!(
            g.column(BlockType::BramInterconnect, 0)
                .unwrap()
                .frame_count(),
            27
        );
        assert_eq!(
            g.column(BlockType::BramContent, 0).unwrap().frame_count(),
            64
        );
    }
}

#[test]
fn iob_and_clock_frame_counts_are_pinned_at_extremes() {
    for device in EXTREMES {
        let g = device.config_geometry();
        let cols = device.geometry().clb_cols as u8;
        assert_eq!(
            g.column(BlockType::Clb, 0).unwrap().frame_count(),
            8,
            "{device:?} clock"
        );
        for (major, side) in [
            (cols + 1, virtex::config::Side::Right),
            (cols + 2, virtex::config::Side::Left),
        ] {
            let c = g.column(BlockType::Clb, major).unwrap();
            assert_eq!(c.kind, ColumnKind::Iob(side), "{device:?}");
            assert_eq!(c.frame_count(), 54, "{device:?} IOB");
        }
        for major in 1..=cols {
            assert_eq!(
                g.column(BlockType::Clb, major).unwrap().frame_count(),
                48,
                "{device:?} CLB"
            );
        }
    }
}

/// The relocation invariant the seams feed: shifting a column by one
/// array position at the array edge either lands on a valid CLB major
/// or refuses — it never lands on the clock or an IOB major.
#[test]
fn one_column_shifts_at_the_edges_stay_inside_the_clb_space() {
    for device in EXTREMES {
        let g: ConfigGeometry = device.config_geometry();
        let cols = device.geometry().clb_cols;
        for c in [0usize, 1, cols / 2 - 1, cols / 2, cols - 2, cols - 1] {
            for delta in [-1i64, 1] {
                let t = c as i64 + delta;
                let mapped = (t >= 0).then(|| g.major_for_clb_col(t as usize)).flatten();
                if (0..cols as i64).contains(&t) {
                    let m = mapped.expect("in-array shift maps");
                    assert!(
                        g.clb_col_for_major(m) == Some(t as usize),
                        "{device:?}: col {c}{delta:+} landed on major {m}"
                    );
                } else {
                    assert!(
                        mapped.is_none(),
                        "{device:?}: col {c}{delta:+} escaped the array"
                    );
                }
            }
        }
    }
}
