//! Property tests pinning the hierarchical dirty bitmap to a flat
//! shadow model: under any interleaving of bit writes, frame clears,
//! conservative marks and baseline resets, the two-level summary must
//! report exactly the set a plain per-frame bitset would.

use proptest::prelude::*;
use std::collections::BTreeSet;
use virtex::{ConfigMemory, Device};

/// One step of the random write/clear schedule.
#[derive(Debug, Clone)]
enum Step {
    /// `set_bit(frame, bit, value)` — marks only on content change.
    SetBit(usize, usize, bool),
    /// `clear_frame(frame)` — marks only when content was present.
    ClearFrame(usize),
    /// `mark_frame_dirty(frame)` — unconditional mark.
    Mark(usize),
    /// `clear_dirty()` — new baseline, empties the model too.
    ResetBaseline,
}

/// Decode a raw sampled tuple into a step. The tag picks the operation;
/// baseline resets are deliberately rare (1 in 8) so dirty sets grow.
fn decode_step(tag: usize, frame: usize, bit: usize, value: bool) -> Step {
    match tag {
        0..=3 => Step::SetBit(frame, bit, value),
        4 | 5 => Step::ClearFrame(frame),
        6 => Step::Mark(frame),
        _ => Step::ResetBaseline,
    }
}

/// Replay `steps` against both the real image and a shadow set that
/// implements the documented marking rules directly.
fn check_schedule(device: Device, steps: &[Step]) {
    let mut mem = ConfigMemory::new(device);
    let mut model: BTreeSet<usize> = BTreeSet::new();
    for step in steps {
        match *step {
            Step::SetBit(frame, bit, value) => {
                if mem.get_bit(frame, bit) != value {
                    model.insert(frame);
                }
                mem.set_bit(frame, bit, value);
            }
            Step::ClearFrame(frame) => {
                if mem.frame(frame).iter().any(|&w| w != 0) {
                    model.insert(frame);
                }
                mem.clear_frame(frame);
            }
            Step::Mark(frame) => {
                mem.mark_frame_dirty(frame);
                model.insert(frame);
            }
            Step::ResetBaseline => {
                mem.clear_dirty();
                model.clear();
            }
        }
        // The hierarchy must agree with the flat model after every step,
        // through every read-side API.
        let expect: Vec<usize> = model.iter().copied().collect();
        assert_eq!(mem.dirty_frames(), expect);
        assert_eq!(mem.dirty_count(), model.len());
        assert_eq!(mem.any_dirty(), !model.is_empty());
        let mut reused = Vec::new();
        mem.dirty_frames_into(&mut reused);
        assert_eq!(reused, expect);
    }
    for f in 0..mem.frame_count().min(64) {
        assert_eq!(mem.is_frame_dirty(f), model.contains(&f));
    }
}

proptest! {
    /// XCV50: small device, dense schedules hammer chunk boundaries.
    #[test]
    fn hierarchy_matches_flat_model_xcv50(
        raw in proptest::collection::vec(
            (0usize..8, 0usize..200, 0usize..300, any::<bool>()), 1..120)
    ) {
        let steps: Vec<Step> = raw
            .into_iter()
            .map(|(t, f, b, v)| decode_step(t, f, b, v))
            .collect();
        check_schedule(Device::XCV50, &steps);
    }

    /// XCV300: enough frames that marks land in distinct summary spans.
    #[test]
    fn hierarchy_matches_flat_model_xcv300(
        raw in proptest::collection::vec(
            (0usize..8, 0usize..1500, 0usize..200, any::<bool>()), 1..60)
    ) {
        let steps: Vec<Step> = raw
            .into_iter()
            .map(|(t, f, b, v)| decode_step(t, f, b, v))
            .collect();
        check_schedule(Device::XCV300, &steps);
    }
}

/// The exact chunk edges (63/64, 127/128, last frame) with interleaved
/// baseline resets — the places a summary-bit bug would hide.
#[test]
fn chunk_edges_after_resets() {
    let mem = ConfigMemory::new(Device::XCV100);
    let last = mem.frame_count() - 1;
    let steps = vec![
        Step::Mark(63),
        Step::Mark(64),
        Step::Mark(last),
        Step::ResetBaseline,
        Step::Mark(64),
        Step::ClearFrame(64),
        Step::SetBit(127, 5, true),
        Step::SetBit(128, 5, true),
        Step::ResetBaseline,
        Step::SetBit(127, 5, false),
        Step::Mark(last),
    ];
    check_schedule(Device::XCV100, &steps);
}
