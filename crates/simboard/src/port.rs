//! The SelectMAP configuration port: the byte-wide interface Virtex
//! boards expose, with its timing model.
//!
//! SelectMAP accepts one byte per CCLK cycle. At the 50 MHz the paper-era
//! boards ran, a bitstream of *N* bytes takes *N* / 50 MHz to download —
//! the entire basis of "partial bitstreams reconfigure faster".

use bitstream::{Bitstream, ConfigError, Interpreter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use virtex::Device;

/// Configuration clock frequency of the modeled port.
pub const SELECTMAP_HZ: u64 = 50_000_000;

/// A deterministic, seedable fault model for the configuration cable.
///
/// Each [`SelectMap::load`] draws from the injector's own generator, so
/// for a given `(rate, seed)` the *k*-th download always meets the same
/// fate — runs are reproducible regardless of thread interleaving as
/// long as each board keeps its own injector. Two fault flavors
/// alternate randomly:
///
/// * **dropped transfer** — the port detects the fault mid-stream and
///   aborts: nothing is committed, the load returns
///   [`ConfigError::TransferFault`], and the wasted bytes still count
///   toward the timing model (the cable was busy);
/// * **silent corruption** — the load completes "successfully" but one
///   bit of one frame the stream wrote has flipped. Only a readback
///   compare can catch this flavor, which is exactly why serving-grade
///   reconfiguration verifies every download.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rate: f64,
    rng: StdRng,
    injected: u64,
}

impl FaultInjector {
    /// An injector firing on each load with probability `rate`,
    /// deterministic in `seed`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate out of range");
        FaultInjector {
            rate,
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// Configured fault probability per load.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Decide the fate of the next download. Consumes exactly the same
    /// generator draws whether or not a fault fires, so the *k*-th load
    /// on a given `(rate, seed)` injector always meets the same fate —
    /// the property both [`SelectMap::load`] and the fleet's virtual-
    /// time scheduler rely on to replay schedules from a seed.
    pub fn draw(&mut self) -> FaultKind {
        let rate = self.rate;
        if self.rng.gen_bool(rate) {
            self.injected += 1;
            if self.rng.gen_bool(0.5) {
                FaultKind::Drop
            } else {
                FaultKind::Corrupt
            }
        } else {
            FaultKind::Clean
        }
    }
}

/// What a [`FaultInjector`] decided for one load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The download goes through untouched.
    Clean,
    /// The transfer aborts mid-stream ([`ConfigError::TransferFault`]);
    /// nothing commits but the cable time is spent.
    Drop,
    /// The download "succeeds" with one bit of one written frame
    /// flipped — only a readback compare catches it.
    Corrupt,
}

/// A SelectMAP port wrapping the device-side packet interpreter and
/// keeping cumulative timing statistics.
#[derive(Debug, Clone)]
pub struct SelectMap {
    interp: Interpreter,
    bytes_loaded: u64,
    downloads: u64,
    fault: Option<FaultInjector>,
}

impl SelectMap {
    /// A port attached to a blank `device`.
    pub fn new(device: Device) -> Self {
        SelectMap {
            interp: Interpreter::new(device),
            bytes_loaded: 0,
            downloads: 0,
            fault: None,
        }
    }

    /// The device behind the port.
    pub fn device(&self) -> Device {
        self.interp.device()
    }

    /// Install (or clear) the port's fault injector.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.fault = injector;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Push a bitstream through the port.
    pub fn load(&mut self, bs: &Bitstream) -> Result<(), ConfigError> {
        self.bytes_loaded += bs.byte_len() as u64;
        self.downloads += 1;
        obs::counter!("simboard_downloads_total").inc();
        obs::counter!("simboard_download_bytes_total").add(bs.byte_len() as u64);
        // The port's time is simulated (byte-per-CCLK), so the download
        // "span" carries the model's duration, not wall-clock.
        obs::record_duration("download", download_time(bs.byte_len()));
        let draw = match &mut self.fault {
            Some(f) => f.draw(),
            None => FaultKind::Clean,
        };
        match draw {
            FaultKind::Clean => {}
            FaultKind::Drop => {
                obs::counter!("simboard_faults_injected_total", "kind" => "drop").inc();
            }
            FaultKind::Corrupt => {
                obs::counter!("simboard_faults_injected_total", "kind" => "corrupt").inc();
            }
        }
        match draw {
            FaultKind::Clean => self.interp.feed(bs),
            FaultKind::Drop => Err(ConfigError::TransferFault),
            FaultKind::Corrupt => {
                // Land the corruption inside a frame this load wrote, so
                // a retry of the same stream is guaranteed to heal it:
                // the dirty byproduct of the feed is the victim pool.
                self.interp.memory_mut().clear_dirty();
                self.interp.feed(bs)?;
                let written = self.interp.memory().dirty_frames();
                if let Some(f) = &mut self.fault {
                    if !written.is_empty() {
                        let frame = written[f.rng.gen_range(0..written.len())];
                        let bit = f
                            .rng
                            .gen_range(0..self.interp.memory().geometry().frame_bits());
                        let mem = self.interp.memory_mut();
                        let old = mem.get_bit(frame, bit);
                        mem.set_bit(frame, bit, !old);
                    }
                }
                Ok(())
            }
        }
    }

    /// Push a compressed wire container through the port, decoding it
    /// stream-wise on the device side ([`wire::apply_streaming`]).
    ///
    /// The byte-per-CCLK cost is the *container's* length — the whole
    /// point of the wire format: fewer bytes cross the cable for the
    /// same configuration. Fault fates mirror [`Self::load`] exactly:
    /// a dropped transfer commits nothing but spends the cable time; a
    /// corrupt transfer completes and flips one bit in a written frame.
    pub fn load_wire(&mut self, container: &[u8]) -> Result<(), ConfigError> {
        self.bytes_loaded += container.len() as u64;
        self.downloads += 1;
        obs::counter!("simboard_downloads_total").inc();
        obs::counter!("simboard_download_bytes_total").add(container.len() as u64);
        obs::record_duration("download", download_time(container.len()));
        let draw = match &mut self.fault {
            Some(f) => f.draw(),
            None => FaultKind::Clean,
        };
        let apply = |interp: &mut Interpreter| {
            wire::apply_streaming(interp, container).map_err(|e| match e {
                wire::ApplyError::Config(c) => c,
                wire::ApplyError::Wire(w) => {
                    ConfigError::InvalidConfiguration(format!("wire: {w}"))
                }
            })
        };
        match draw {
            FaultKind::Clean => apply(&mut self.interp).map(|_| ()),
            FaultKind::Drop => {
                obs::counter!("simboard_faults_injected_total", "kind" => "drop").inc();
                Err(ConfigError::TransferFault)
            }
            FaultKind::Corrupt => {
                obs::counter!("simboard_faults_injected_total", "kind" => "corrupt").inc();
                self.interp.memory_mut().clear_dirty();
                apply(&mut self.interp)?;
                let written = self.interp.memory().dirty_frames();
                if let Some(f) = &mut self.fault {
                    if !written.is_empty() {
                        let frame = written[f.rng.gen_range(0..written.len())];
                        let bit = f
                            .rng
                            .gen_range(0..self.interp.memory().geometry().frame_bits());
                        let mem = self.interp.memory_mut();
                        let old = mem.get_bit(frame, bit);
                        mem.set_bit(frame, bit, !old);
                    }
                }
                Ok(())
            }
        }
    }

    /// Cumulative bytes pushed through the port.
    pub fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded
    }

    /// Number of load operations.
    pub fn downloads(&self) -> u64 {
        self.downloads
    }

    /// Cumulative configuration time under the byte-per-cycle model.
    pub fn total_config_time(&self) -> Duration {
        download_time(self.bytes_loaded as usize)
    }

    /// The interpreter (device-side state).
    pub fn interpreter(&self) -> &Interpreter {
        &self.interp
    }

    /// Mutable access to the interpreter (for readback).
    pub fn interpreter_mut(&mut self) -> &mut Interpreter {
        &mut self.interp
    }
}

/// Download time for `bytes` under the SelectMAP model, in nanoseconds —
/// the integer the fleet's discrete-event virtual clock advances by.
pub fn download_ns(bytes: usize) -> u64 {
    bytes as u64 * 1_000_000_000 / SELECTMAP_HZ
}

/// Download time for `bytes` under the SelectMAP model.
pub fn download_time(bytes: usize) -> Duration {
    Duration::from_nanos(download_ns(bytes))
}

/// TCK frequency of the modeled JTAG port.
pub const JTAG_HZ: u64 = 33_000_000;

/// Download time for `bytes` over JTAG (1 bit per TCK): the slow path
/// boards fall back to, ~12x worse than SelectMAP — which is why paper-era
/// RC systems cared so much about bitstream size.
pub fn jtag_download_time(bytes: usize) -> Duration {
    Duration::from_nanos(bytes as u64 * 8 * 1_000_000_000 / JTAG_HZ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::full_bitstream;
    use virtex::ConfigMemory;

    #[test]
    fn timing_is_proportional_to_bytes() {
        assert_eq!(download_time(50_000_000), Duration::from_secs(1));
        assert_eq!(download_time(0), Duration::ZERO);
        let t1 = download_time(1000);
        let t3 = download_time(3000);
        assert_eq!(t3, t1 * 3);
        assert_eq!(download_ns(1000), download_time(1000).as_nanos() as u64);
    }

    #[test]
    fn fault_draws_are_deterministic_per_seed() {
        let fates = |seed: u64| -> Vec<FaultKind> {
            let mut f = FaultInjector::new(0.5, seed);
            (0..64).map(|_| f.draw()).collect()
        };
        assert_eq!(fates(9), fates(9), "same seed, same fate sequence");
        assert_ne!(fates(9), fates(10), "different seeds diverge");
        let mut f = FaultInjector::new(0.0, 3);
        assert!((0..32).all(|_| f.draw() == FaultKind::Clean));
        assert_eq!(f.injected(), 0);
        let mut f = FaultInjector::new(1.0, 3);
        assert!((0..32).all(|_| f.draw() != FaultKind::Clean));
        assert_eq!(f.injected(), 32);
    }

    #[test]
    fn jtag_is_slower_than_selectmap() {
        let b = 100_000;
        assert!(jtag_download_time(b) > download_time(b) * 10);
        assert_eq!(jtag_download_time(0), Duration::ZERO);
    }

    #[test]
    fn port_accumulates_stats() {
        let mem = ConfigMemory::new(Device::XCV50);
        let bs = full_bitstream(&mem);
        let mut port = SelectMap::new(Device::XCV50);
        port.load(&bs).unwrap();
        port.load(&bs).unwrap();
        assert_eq!(port.downloads(), 2);
        assert_eq!(port.bytes_loaded(), 2 * bs.byte_len() as u64);
        assert!(port.total_config_time() > Duration::ZERO);
        assert!(port.interpreter().started());
    }

    #[test]
    fn fault_injector_is_deterministic_and_heals_on_retry() {
        let mem = ConfigMemory::new(Device::XCV50);
        let bs = full_bitstream(&mem);

        // Rate 0 never fires.
        let mut clean = SelectMap::new(Device::XCV50);
        clean.set_fault_injector(Some(FaultInjector::new(0.0, 1)));
        clean.load(&bs).unwrap();
        assert_eq!(clean.fault_injector().unwrap().injected(), 0);

        // Rate 1 fires on every load; outcomes are drop or corrupt.
        let run = |seed: u64| {
            let mut port = SelectMap::new(Device::XCV50);
            port.set_fault_injector(Some(FaultInjector::new(1.0, seed)));
            let mut outcomes = Vec::new();
            for _ in 0..8 {
                outcomes.push(port.load(&bs).is_err());
            }
            (outcomes, port.interpreter().memory().clone())
        };
        let (a, mem_a) = run(42);
        let (b, mem_b) = run(42);
        assert_eq!(a, b, "same seed, same fate per load");
        assert_eq!(mem_a, mem_b);
        assert!(a.iter().any(|&e| e) || mem_a != mem, "rate-1 faults show");

        // A corrupted image differs from the truth in at most one frame,
        // and a clean retry of the same stream heals it.
        let mut port = SelectMap::new(Device::XCV50);
        port.set_fault_injector(Some(FaultInjector::new(1.0, 7)));
        while port.load(&bs).is_err() {}
        // That load "succeeded" with rate-1 faults, so it corrupted.
        assert_ne!(port.interpreter().memory(), &mem);
        assert_eq!(port.interpreter().memory().diff_frames(&mem).len(), 1);
        port.set_fault_injector(None);
        port.load(&bs).unwrap();
        assert_eq!(port.interpreter().memory(), &mem);
    }

    #[test]
    fn wire_load_lands_the_same_configuration_with_fewer_bytes() {
        let mut mem = ConfigMemory::new(Device::XCV50);
        for f in 0..8 {
            mem.frame_mut(f)[2] = 0xC0DE_0000 | f as u32;
        }
        let bs = full_bitstream(&mem);
        let enc = wire::encode(Device::XCV50, &bs, None);

        let mut plain = SelectMap::new(Device::XCV50);
        plain.load(&bs).unwrap();
        let mut wired = SelectMap::new(Device::XCV50);
        wired.load_wire(&enc.bytes).unwrap();
        assert_eq!(plain.interpreter().memory(), wired.interpreter().memory());
        assert!(
            wired.bytes_loaded() < plain.bytes_loaded(),
            "the port must be billed for container bytes, not decoded bytes"
        );

        // Fault fates mirror the plain path: a rate-1 injector either
        // drops (nothing committed) or corrupts (exactly one frame off).
        let mut faulty = SelectMap::new(Device::XCV50);
        faulty.set_fault_injector(Some(FaultInjector::new(1.0, 11)));
        match faulty.load_wire(&enc.bytes) {
            Err(ConfigError::TransferFault) => {
                assert!(!faulty.interpreter().started(), "drop commits nothing");
            }
            Err(e) => panic!("unexpected wire-load failure: {e}"),
            Ok(()) => {
                let diff = faulty
                    .interpreter()
                    .memory()
                    .diff_frames(plain.interpreter().memory());
                assert_eq!(diff.len(), 1, "corrupt flips one written frame");
            }
        }
        assert_eq!(faulty.bytes_loaded(), enc.bytes.len() as u64);

        // A garbage container is a typed configuration error.
        let mut port = SelectMap::new(Device::XCV50);
        assert!(matches!(
            port.load_wire(&[0xAB; 64]),
            Err(ConfigError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn dropped_transfer_commits_nothing_but_costs_time() {
        let mem = ConfigMemory::new(Device::XCV50);
        let bs = full_bitstream(&mem);
        let mut port = SelectMap::new(Device::XCV50);
        // Seed 0's first draw at rate 1.0 may be either flavor; scan for
        // a seed whose first fault is a drop so the assertion is stable.
        let seed = (0..64)
            .find(|&s| {
                let mut p = SelectMap::new(Device::XCV50);
                p.set_fault_injector(Some(FaultInjector::new(1.0, s)));
                p.load(&bs).is_err()
            })
            .expect("some seed drops first");
        port.set_fault_injector(Some(FaultInjector::new(1.0, seed)));
        assert!(matches!(port.load(&bs), Err(ConfigError::TransferFault)));
        assert!(!port.interpreter().started(), "nothing committed");
        assert_eq!(port.bytes_loaded(), bs.byte_len() as u64, "cable was busy");
        assert!(port.total_config_time() > Duration::ZERO);
    }

    #[test]
    fn full_download_times_match_paper_era_magnitudes() {
        // A paper-era full Virtex bitstream is hundreds of KB and loads
        // in a handful of milliseconds at 50 MHz byte-wide.
        let mem = ConfigMemory::new(Device::XCV300);
        let bs = full_bitstream(&mem);
        let t = download_time(bs.byte_len());
        assert!(t > Duration::from_micros(500), "{t:?}");
        assert!(t < Duration::from_millis(50), "{t:?}");
    }
}
