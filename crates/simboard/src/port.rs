//! The SelectMAP configuration port: the byte-wide interface Virtex
//! boards expose, with its timing model.
//!
//! SelectMAP accepts one byte per CCLK cycle. At the 50 MHz the paper-era
//! boards ran, a bitstream of *N* bytes takes *N* / 50 MHz to download —
//! the entire basis of "partial bitstreams reconfigure faster".

use bitstream::{Bitstream, ConfigError, Interpreter};
use std::time::Duration;
use virtex::Device;

/// Configuration clock frequency of the modeled port.
pub const SELECTMAP_HZ: u64 = 50_000_000;

/// A SelectMAP port wrapping the device-side packet interpreter and
/// keeping cumulative timing statistics.
#[derive(Debug, Clone)]
pub struct SelectMap {
    interp: Interpreter,
    bytes_loaded: u64,
    downloads: u64,
}

impl SelectMap {
    /// A port attached to a blank `device`.
    pub fn new(device: Device) -> Self {
        SelectMap {
            interp: Interpreter::new(device),
            bytes_loaded: 0,
            downloads: 0,
        }
    }

    /// The device behind the port.
    pub fn device(&self) -> Device {
        self.interp.device()
    }

    /// Push a bitstream through the port.
    pub fn load(&mut self, bs: &Bitstream) -> Result<(), ConfigError> {
        self.bytes_loaded += bs.byte_len() as u64;
        self.downloads += 1;
        self.interp.feed(bs)
    }

    /// Cumulative bytes pushed through the port.
    pub fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded
    }

    /// Number of load operations.
    pub fn downloads(&self) -> u64 {
        self.downloads
    }

    /// Cumulative configuration time under the byte-per-cycle model.
    pub fn total_config_time(&self) -> Duration {
        download_time(self.bytes_loaded as usize)
    }

    /// The interpreter (device-side state).
    pub fn interpreter(&self) -> &Interpreter {
        &self.interp
    }

    /// Mutable access to the interpreter (for readback).
    pub fn interpreter_mut(&mut self) -> &mut Interpreter {
        &mut self.interp
    }
}

/// Download time for `bytes` under the SelectMAP model.
pub fn download_time(bytes: usize) -> Duration {
    Duration::from_nanos(bytes as u64 * 1_000_000_000 / SELECTMAP_HZ)
}

/// TCK frequency of the modeled JTAG port.
pub const JTAG_HZ: u64 = 33_000_000;

/// Download time for `bytes` over JTAG (1 bit per TCK): the slow path
/// boards fall back to, ~12x worse than SelectMAP — which is why paper-era
/// RC systems cared so much about bitstream size.
pub fn jtag_download_time(bytes: usize) -> Duration {
    Duration::from_nanos(bytes as u64 * 8 * 1_000_000_000 / JTAG_HZ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::full_bitstream;
    use virtex::ConfigMemory;

    #[test]
    fn timing_is_proportional_to_bytes() {
        assert_eq!(download_time(50_000_000), Duration::from_secs(1));
        assert_eq!(download_time(0), Duration::ZERO);
        let t1 = download_time(1000);
        let t3 = download_time(3000);
        assert_eq!(t3, t1 * 3);
    }

    #[test]
    fn jtag_is_slower_than_selectmap() {
        let b = 100_000;
        assert!(jtag_download_time(b) > download_time(b) * 10);
        assert_eq!(jtag_download_time(0), Duration::ZERO);
    }

    #[test]
    fn port_accumulates_stats() {
        let mem = ConfigMemory::new(Device::XCV50);
        let bs = full_bitstream(&mem);
        let mut port = SelectMap::new(Device::XCV50);
        port.load(&bs).unwrap();
        port.load(&bs).unwrap();
        assert_eq!(port.downloads(), 2);
        assert_eq!(port.bytes_loaded(), 2 * bs.byte_len() as u64);
        assert!(port.total_config_time() > Duration::ZERO);
        assert!(port.interpreter().started());
    }

    #[test]
    fn full_download_times_match_paper_era_magnitudes() {
        // A paper-era full Virtex bitstream is hundreds of KB and loads
        // in a handful of milliseconds at 50 MHz byte-wide.
        let mem = ConfigMemory::new(Device::XCV300);
        let bs = full_bitstream(&mem);
        let t = download_time(bs.byte_len());
        assert!(t > Duration::from_micros(500), "{t:?}");
        assert!(t < Duration::from_millis(50), "{t:?}");
    }
}
