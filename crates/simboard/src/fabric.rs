//! Functional simulation of a *configured* fabric.
//!
//! [`FabricModel::decode`] reads a configuration memory back into typed
//! resources — the inverse of what JPG writes — and
//! [`FabricSim`] executes the decoded circuit: wires carry values across
//! enabled PIPs, LUTs evaluate their truth tables, flip-flops update on
//! the global clock. Nothing here consults the original netlist: if the
//! simulated behaviour matches the golden model, the whole
//! flow→bitstream→device pipeline is correct end to end.

use jbits::Jbits;
use std::collections::HashMap;
use virtex::{
    ClbResource, ConfigMemory, Device, IobResource, MuxSetting, SliceId, SlicePin, SliceResource,
    TileCoord, Wire, WireKind,
};

/// Decode failure: the configuration is not a legal circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Two enabled PIPs drive the same wire.
    Contention {
        /// The doubly driven wire.
        wire: String,
    },
    /// Combinational settling did not converge (a loop through enabled
    /// PIPs and LUTs).
    Oscillation,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Contention { wire } => write!(f, "wire {wire} has multiple drivers"),
            DecodeError::Oscillation => write!(f, "combinational loop does not settle"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// One decoded slice.
#[derive(Debug, Clone)]
pub struct DecodedSlice {
    /// Tile.
    pub tile: TileCoord,
    /// Slice.
    pub slice: SliceId,
    /// F LUT truth table.
    pub lut_f: u16,
    /// G LUT truth table.
    pub lut_g: u16,
    /// FFX present.
    pub ffx: bool,
    /// FFY present.
    pub ffy: bool,
    /// FFX power-on value.
    pub init_x: bool,
    /// FFY power-on value.
    pub init_y: bool,
    /// FFX D source: true = BX bypass, false = F LUT.
    pub dx_bypass: bool,
    /// FFY D source.
    pub dy_bypass: bool,
    /// X output driven by the F LUT.
    pub x_on: bool,
    /// Y output driven by the G LUT.
    pub y_on: bool,
    /// Clock-enable source.
    pub ce: MuxSetting,
    /// Whether the slice CLK pin hangs off the global clock tree.
    pub clocked: bool,
}

/// One decoded IOB pad.
#[derive(Debug, Clone)]
pub struct DecodedIob {
    /// Ring tile.
    pub tile: TileCoord,
    /// Pad index.
    pub pad: u8,
    /// Input buffer enabled (pad drives fabric).
    pub inbuf: bool,
    /// Output buffer enabled (fabric drives pad).
    pub outbuf: bool,
}

/// A decoded configuration: everything needed to simulate the device.
#[derive(Debug, Clone)]
pub struct FabricModel {
    /// Device decoded.
    pub device: Device,
    /// Active slices.
    pub slices: Vec<DecodedSlice>,
    /// Active pads.
    pub iobs: Vec<DecodedIob>,
    /// Enabled PIPs as `(from, to)` pairs.
    pub pips: Vec<(Wire, Wire)>,
}

impl FabricModel {
    /// Decode a configuration memory. `O(active tiles × pips per tile)`:
    /// untouched tiles are skipped via a window emptiness test.
    pub fn decode(mem: &ConfigMemory) -> Result<FabricModel, DecodeError> {
        let device = mem.device();
        let mut jb = Jbits::from_memory(mem.clone());
        let graph = virtex::RoutingGraph::new(device);
        let mut model = FabricModel {
            device,
            slices: Vec::new(),
            iobs: Vec::new(),
            pips: Vec::new(),
        };

        let clb_tiles: Vec<TileCoord> = virtex::grid::clb_tiles(device).collect();
        let iob_tiles: Vec<TileCoord> = virtex::grid::iob_tiles(device).collect();
        for tile in clb_tiles.iter().chain(&iob_tiles).copied() {
            if !jb.tile_in_use(tile) {
                continue;
            }
            if tile.is_clb(device) {
                for slice in SliceId::ALL {
                    if let Some(d) = decode_slice(&mut jb, tile, slice) {
                        model.slices.push(d);
                    }
                }
            } else {
                for pad in 0..virtex::routing::PADS_PER_IOB as u8 {
                    let inbuf = jb.get_iob(tile, pad, IobResource::InputEnable).as_bool();
                    let outbuf = jb.get_iob(tile, pad, IobResource::OutputEnable).as_bool();
                    if inbuf || outbuf {
                        model.iobs.push(DecodedIob {
                            tile,
                            pad,
                            inbuf,
                            outbuf,
                        });
                    }
                }
            }
            for pip in graph.tile_pips(tile) {
                if jb.get_pip(&pip) == Some(true) {
                    model.pips.push((pip.from, pip.to));
                }
            }
        }

        // Clock connectivity + contention check.
        let mut driver_count: HashMap<Wire, u32> = HashMap::new();
        for (_, to) in &model.pips {
            *driver_count.entry(*to).or_insert(0) += 1;
        }
        if let Some((w, _)) = driver_count.iter().find(|(_, &c)| c > 1) {
            return Err(DecodeError::Contention { wire: w.name() });
        }
        for s in &mut model.slices {
            let clk = Wire::new(
                s.tile,
                WireKind::SlicePin {
                    slice: s.slice,
                    pin: SlicePin::Clk,
                },
            );
            s.clocked = driver_count.contains_key(&clk);
        }
        Ok(model)
    }
}

fn decode_slice(jb: &mut Jbits, tile: TileCoord, slice: SliceId) -> Option<DecodedSlice> {
    let get = |jb: &mut Jbits, r: SliceResource| jb.get(tile, ClbResource::new(slice, r)).bits();
    let lut_f = get(jb, SliceResource::Lut(virtex::LutId::F)) as u16;
    let lut_g = get(jb, SliceResource::Lut(virtex::LutId::G)) as u16;
    let ffx = get(jb, SliceResource::FfX) == 1;
    let ffy = get(jb, SliceResource::FfY) == 1;
    let x_on = MuxSetting::decode(get(jb, SliceResource::FxMux)) == Some(MuxSetting::Primary);
    let y_on = MuxSetting::decode(get(jb, SliceResource::GyMux)) == Some(MuxSetting::Primary);
    if !(ffx || ffy || x_on || y_on) {
        return None;
    }
    Some(DecodedSlice {
        tile,
        slice,
        lut_f,
        lut_g,
        ffx,
        ffy,
        init_x: get(jb, SliceResource::InitX) == 1,
        init_y: get(jb, SliceResource::InitY) == 1,
        dx_bypass: get(jb, SliceResource::DxMux) == 1,
        dy_bypass: get(jb, SliceResource::DyMux) == 1,
        x_on,
        y_on,
        ce: MuxSetting::decode(get(jb, SliceResource::CeMux)).unwrap_or(MuxSetting::Off),
        clocked: false, // filled in by decode()
    })
}

/// The running simulation of a decoded fabric.
#[derive(Debug, Clone)]
pub struct FabricSim {
    model: FabricModel,
    /// External value applied to each pad.
    pad_in: HashMap<(TileCoord, u8), bool>,
    /// FF state per model slice: (X, Y).
    ff: Vec<(bool, bool)>,
    /// Wire values after the last settle.
    values: HashMap<Wire, bool>,
}

impl FabricSim {
    /// Start simulating; FFs take their INIT values (the GSR behaviour on
    /// START).
    pub fn new(model: FabricModel) -> Result<FabricSim, DecodeError> {
        let ff = model.slices.iter().map(|s| (s.init_x, s.init_y)).collect();
        let mut sim = FabricSim {
            model,
            pad_in: HashMap::new(),
            ff,
            values: HashMap::new(),
        };
        sim.settle()?;
        Ok(sim)
    }

    /// The decoded model.
    pub fn model(&self) -> &FabricModel {
        &self.model
    }

    /// Drive a pad from outside.
    pub fn set_pad(&mut self, tile: TileCoord, pad: u8, value: bool) {
        self.pad_in.insert((tile, pad), value);
    }

    /// Read a pad's fabric-driven value (the board-visible output).
    pub fn get_pad(&self, tile: TileCoord, pad: u8) -> bool {
        self.values
            .get(&Wire::new(tile, WireKind::PadOut(pad)))
            .copied()
            .unwrap_or(false)
    }

    fn wire(&self, w: &Wire) -> bool {
        self.values.get(w).copied().unwrap_or(false)
    }

    fn pin(&self, s: &DecodedSlice, pin: SlicePin) -> bool {
        self.wire(&Wire::new(
            s.tile,
            WireKind::SlicePin {
                slice: s.slice,
                pin,
            },
        ))
    }

    fn lut_out(&self, s: &DecodedSlice, g: bool) -> bool {
        let pins = if g {
            [SlicePin::G1, SlicePin::G2, SlicePin::G3, SlicePin::G4]
        } else {
            [SlicePin::F1, SlicePin::F2, SlicePin::F3, SlicePin::F4]
        };
        let mut idx = 0usize;
        for (i, p) in pins.iter().enumerate() {
            if self.pin(s, *p) {
                idx |= 1 << i;
            }
        }
        let table = if g { s.lut_g } else { s.lut_f };
        (table >> idx) & 1 == 1
    }

    /// Propagate combinational logic to a fixed point.
    pub fn settle(&mut self) -> Result<(), DecodeError> {
        // Upper bound on combinational depth: every pass fixes at least
        // one more wire, so #pips + #slices + 2 passes suffice for any
        // loop-free circuit.
        let max_passes = self.model.pips.len() + self.model.slices.len() + 2;
        for _ in 0..max_passes {
            let mut changed = false;
            let set = |values: &mut HashMap<Wire, bool>, w: Wire, v: bool| {
                if values.get(&w).copied().unwrap_or(false) != v {
                    values.insert(w, v);
                    true
                } else {
                    false
                }
            };
            // Pads drive the fabric.
            for iob in &self.model.iobs {
                if iob.inbuf {
                    let v = self
                        .pad_in
                        .get(&(iob.tile, iob.pad))
                        .copied()
                        .unwrap_or(false);
                    changed |= set(
                        &mut self.values,
                        Wire::new(iob.tile, WireKind::PadIn(iob.pad)),
                        v,
                    );
                }
            }
            // Slice outputs.
            let outs: Vec<(Wire, bool)> = self
                .model
                .slices
                .iter()
                .enumerate()
                .flat_map(|(i, s)| {
                    let mut v = Vec::new();
                    let mk = |pin, val: bool| {
                        (
                            Wire::new(
                                s.tile,
                                WireKind::SlicePin {
                                    slice: s.slice,
                                    pin,
                                },
                            ),
                            val,
                        )
                    };
                    if s.x_on {
                        v.push(mk(SlicePin::X, self.lut_out(s, false)));
                    }
                    if s.y_on {
                        v.push(mk(SlicePin::Y, self.lut_out(s, true)));
                    }
                    if s.ffx {
                        v.push(mk(SlicePin::XQ, self.ff[i].0));
                    }
                    if s.ffy {
                        v.push(mk(SlicePin::YQ, self.ff[i].1));
                    }
                    v
                })
                .collect();
            for (w, v) in outs {
                changed |= set(&mut self.values, w, v);
            }
            // PIP propagation.
            let moves: Vec<(Wire, bool)> = self
                .model
                .pips
                .iter()
                .map(|(from, to)| (*to, self.wire(from)))
                .collect();
            for (w, v) in moves {
                changed |= set(&mut self.values, w, v);
            }
            if !changed {
                return Ok(());
            }
        }
        Err(DecodeError::Oscillation)
    }

    fn ce_enabled(&self, s: &DecodedSlice) -> bool {
        match s.ce {
            MuxSetting::Primary => self.pin(s, SlicePin::CE),
            _ => true, // OFF/ONE/unused: always enabled
        }
    }

    /// One rising edge of the global clock.
    pub fn clock(&mut self) -> Result<(), DecodeError> {
        self.settle()?;
        let next: Vec<(usize, bool, bool)> = self
            .model
            .slices
            .iter()
            .enumerate()
            .filter(|(_, s)| s.clocked && (s.ffx || s.ffy))
            .map(|(i, s)| {
                let en = self.ce_enabled(s);
                let dx = if s.dx_bypass {
                    self.pin(s, SlicePin::BX)
                } else {
                    self.lut_out(s, false)
                };
                let dy = if s.dy_bypass {
                    self.pin(s, SlicePin::BY)
                } else {
                    self.lut_out(s, true)
                };
                let (cx, cy) = self.ff[i];
                (
                    i,
                    if en && s.ffx { dx } else { cx },
                    if en && s.ffy { dy } else { cy },
                )
            })
            .collect();
        for (i, x, y) in next {
            self.ff[i] = (x, y);
        }
        self.settle()
    }

    /// Run `n` clock cycles.
    pub fn run(&mut self, n: usize) -> Result<(), DecodeError> {
        for _ in 0..n {
            self.clock()?;
        }
        Ok(())
    }

    /// Live flip-flop states: `(tile, slice, is_ffx, value)` for every
    /// present FF — what the CAPTURE facility snapshots.
    pub fn ff_states(&self) -> Vec<(TileCoord, SliceId, bool, bool)> {
        let mut out = Vec::new();
        for (i, s) in self.model.slices.iter().enumerate() {
            if s.ffx {
                out.push((s.tile, s.slice, true, self.ff[i].0));
            }
            if s.ffy {
                out.push((s.tile, s.slice, false, self.ff[i].1));
            }
        }
        out
    }

    /// Copy flip-flop state from a previous simulation for slices that
    /// exist in both models — what survives a *dynamic partial*
    /// reconfiguration on real silicon (only the rewritten columns lose
    /// state; here we conservatively keep state per surviving slice).
    pub fn carry_state_from(&mut self, prev: &FabricSim) {
        let prev_idx: HashMap<(TileCoord, SliceId), usize> = prev
            .model
            .slices
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.tile, s.slice), i))
            .collect();
        for (i, s) in self.model.slices.iter().enumerate() {
            if let Some(&j) = prev_idx.get(&(s.tile, s.slice)) {
                self.ff[i] = prev.ff[j];
            }
        }
    }

    /// Reset all FFs to their INIT values (board-level GSR).
    pub fn reset(&mut self) {
        for (i, s) in self.model.slices.iter().enumerate() {
            self.ff[i] = (s.init_x, s.init_y);
        }
        let _ = self.settle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::LutId;

    /// Hand-build a tiny circuit with raw JBits calls: pad -> LUT(NOT) ->
    /// pad, no CAD flow involved.
    fn build_inverter() -> (ConfigMemory, TileCoord, TileCoord) {
        let device = Device::XCV50;
        let mut jb = Jbits::new(device);
        let graph = virtex::RoutingGraph::new(device);
        let in_tile = TileCoord::new(-1, 3); // top ring
        let lut_tile = TileCoord::new(0, 3);
        // Pad 0 drives single S0 into the CLB below; single hits F1 (idx
        // 0 class) of slice S0.
        jb.set_iob(
            in_tile,
            0,
            IobResource::InputEnable,
            virtex::ResourceValue::bit(true),
        );
        let s_in = Wire::new(
            in_tile,
            WireKind::Single {
                dir: virtex::Dir::South,
                idx: 0,
            },
        );
        let pin_f1 = Wire::new(
            lut_tile,
            WireKind::SlicePin {
                slice: SliceId::S0,
                pin: SlicePin::F1,
            },
        );
        let p1 = graph
            .find_pip(Wire::new(in_tile, WireKind::PadIn(0)), s_in)
            .unwrap();
        let p2 = graph.find_pip(s_in, pin_f1).unwrap();
        assert!(jb.set_pip(&p1, true));
        assert!(jb.set_pip(&p2, true));
        // LUT = NOT(A1): output 1 when input bit0 is 0.
        jb.set_lut(lut_tile, SliceId::S0, LutId::F, 0x5555);
        jb.set(
            lut_tile,
            ClbResource::new(SliceId::S0, SliceResource::FxMux),
            virtex::ResourceValue::new(MuxSetting::Primary.encode(), 2),
        );
        // X -> OMUX -> single N back to the ring -> PadOut.
        let x = Wire::new(
            lut_tile,
            WireKind::SlicePin {
                slice: SliceId::S0,
                pin: SlicePin::X,
            },
        );
        let mut cand = Vec::new();
        graph.downhill(x, &mut cand);
        let omux = cand[0].to;
        assert!(jb.set_pip(&cand[0], true));
        let mut cand2 = Vec::new();
        graph.downhill(omux, &mut cand2);
        let north = cand2
            .iter()
            .find(|p| {
                matches!(
                    p.to.kind,
                    WireKind::Single {
                        dir: virtex::Dir::North,
                        ..
                    }
                )
            })
            .unwrap();
        assert!(jb.set_pip(north, true));
        let mut cand3 = Vec::new();
        graph.downhill(north.to, &mut cand3);
        let to_pad = cand3
            .iter()
            .find(|p| matches!(p.to.kind, WireKind::PadOut(_)))
            .unwrap();
        assert!(jb.set_pip(to_pad, true));
        let out_pad = match to_pad.to.kind {
            WireKind::PadOut(p) => p,
            _ => unreachable!(),
        };
        jb.set_iob(
            in_tile,
            out_pad,
            IobResource::OutputEnable,
            virtex::ResourceValue::bit(true),
        );
        (jb.into_memory(), in_tile, in_tile)
    }

    #[test]
    fn decode_and_simulate_hand_built_inverter() {
        let (mem, in_tile, out_tile) = build_inverter();
        let model = FabricModel::decode(&mem).unwrap();
        assert_eq!(model.slices.len(), 1);
        assert!(!model.pips.is_empty());
        let mut sim = FabricSim::new(model).unwrap();
        sim.set_pad(in_tile, 0, false);
        sim.settle().unwrap();
        let out_pad_idx = sim
            .model()
            .iobs
            .iter()
            .find(|i| i.outbuf)
            .map(|i| i.pad)
            .unwrap();
        assert!(sim.get_pad(out_tile, out_pad_idx), "NOT(0) = 1");
        sim.set_pad(in_tile, 0, true);
        sim.settle().unwrap();
        assert!(!sim.get_pad(out_tile, out_pad_idx), "NOT(1) = 0");
    }

    #[test]
    fn contention_detected() {
        let device = Device::XCV50;
        let mut jb = Jbits::new(device);
        let graph = virtex::RoutingGraph::new(device);
        let t = TileCoord::new(2, 2);
        // Two different pips driving the same destination wire.
        let pips = graph.tile_pips(t);
        let dest = pips[10].to;
        let drivers: Vec<_> = pips.iter().filter(|p| p.to == dest).take(2).collect();
        assert!(drivers.len() >= 2, "need two drivers for the test");
        for p in &drivers {
            assert!(jb.set_pip(p, true));
        }
        // Give the tile a visible slice so decode keeps it.
        let err = FabricModel::decode(jb.memory()).unwrap_err();
        assert!(matches!(err, DecodeError::Contention { .. }));
    }

    #[test]
    fn empty_device_decodes_to_empty_model() {
        let mem = ConfigMemory::new(Device::XCV50);
        let model = FabricModel::decode(&mem).unwrap();
        assert!(model.slices.is_empty());
        assert!(model.iobs.is_empty());
        assert!(model.pips.is_empty());
    }
}
