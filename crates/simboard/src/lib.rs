//! # simboard — a simulated Virtex board behind the XHWIF interface
//!
//! The paper downloads (partial) bitstreams to a physical board through
//! JBits' XHWIF layer. This crate provides the simulated equivalent:
//!
//! * [`port`] — a SelectMAP configuration port with the byte-per-cycle
//!   timing model (50 MHz), so download times are proportional to
//!   bitstream bytes exactly as on hardware — the basis of the paper's
//!   configuration-time arguments;
//! * [`fabric`] — a functional simulator for the *configured* device: it
//!   decodes the configuration memory back into LUTs, flip-flops, IOBs
//!   and enabled PIPs, then simulates the resulting circuit cycle by
//!   cycle. This closes the verification loop: a design that survives
//!   map → place → route → bitgen → (partial) reconfiguration must still
//!   behave exactly like its golden netlist;
//! * [`board`] — [`SimBoard`], tying both together behind
//!   [`jbits::Xhwif`].

pub mod board;
pub mod fabric;
pub mod multiboard;
pub mod port;

pub use board::SimBoard;
pub use fabric::{DecodeError, FabricModel, FabricSim};
pub use multiboard::MultiBoard;
pub use port::{FaultInjector, FaultKind, SelectMap, SELECTMAP_HZ};
