//! A multi-FPGA board: several simulated devices behind one XHWIF
//! endpoint, with XHWIF-style device selection — the board class the
//! original JBits demos drove (XHWIF reports a device *list*).

use crate::board::SimBoard;
use bitstream::{Bitstream, ConfigError};
use jbits::Xhwif;
use virtex::Device;

/// A board carrying several independent devices.
#[derive(Debug)]
pub struct MultiBoard {
    boards: Vec<SimBoard>,
    selected: usize,
}

impl MultiBoard {
    /// Build a board with the given device fits.
    pub fn new(devices: &[Device]) -> Self {
        assert!(!devices.is_empty(), "a board needs at least one device");
        MultiBoard {
            boards: devices.iter().map(|d| SimBoard::new(*d)).collect(),
            selected: 0,
        }
    }

    /// The currently selected position.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// Direct access to one device's board (for pad I/O), or `None` for
    /// an out-of-range position.
    pub fn board(&self, index: usize) -> Option<&SimBoard> {
        self.boards.get(index)
    }

    /// Mutable access to one device's board, or `None` for an
    /// out-of-range position.
    pub fn board_mut(&mut self, index: usize) -> Option<&mut SimBoard> {
        self.boards.get_mut(index)
    }
}

impl Xhwif for MultiBoard {
    fn device(&self) -> Device {
        self.boards[self.selected].device()
    }

    fn device_count(&self) -> usize {
        self.boards.len()
    }

    fn select_device(&mut self, index: usize) -> bool {
        if index < self.boards.len() {
            self.selected = index;
            true
        } else {
            false
        }
    }

    fn set_configuration(&mut self, bits: &Bitstream) -> Result<(), ConfigError> {
        self.boards[self.selected].set_configuration(bits)
    }

    fn get_configuration(&mut self) -> Result<Vec<u32>, ConfigError> {
        self.boards[self.selected].get_configuration()
    }

    fn get_configuration_region(
        &mut self,
        range: bitstream::FrameRange,
    ) -> Result<Vec<u32>, ConfigError> {
        // Delegate so the selected SimBoard's frame-addressed readback
        // override is used instead of the dump-and-slice fallback.
        self.boards[self.selected].get_configuration_region(range)
    }

    fn clock_step(&mut self, cycles: u64) {
        // The user clock is board-wide: every device steps together.
        for b in &mut self.boards {
            b.clock_step(cycles);
        }
    }

    fn reset(&mut self) {
        for b in &mut self.boards {
            b.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::ConfigMemory;

    #[test]
    fn selection_routes_configuration() {
        let mut mb = MultiBoard::new(&[Device::XCV50, Device::XCV100]);
        assert_eq!(mb.device_count(), 2);
        assert_eq!(mb.device(), Device::XCV50);

        // A bitstream for the second device fails on the first (IDCODE)…
        let mem = ConfigMemory::new(Device::XCV100);
        let bs = bitstream::full_bitstream(&mem);
        assert!(mb.set_configuration(&bs).is_err());
        // …and succeeds after selection.
        assert!(mb.select_device(1));
        assert_eq!(mb.device(), Device::XCV100);
        mb.set_configuration(&bs).unwrap();
        assert_eq!(mb.get_configuration().unwrap().len(), mem.as_words().len());

        assert!(!mb.select_device(2));
        assert_eq!(mb.selected(), 1);
    }

    #[test]
    fn board_access_is_checked() {
        let mut mb = MultiBoard::new(&[Device::XCV50, Device::XCV100]);
        assert_eq!(mb.board(0).unwrap().device(), Device::XCV50);
        assert_eq!(mb.board_mut(1).unwrap().device(), Device::XCV100);
        assert!(mb.board(2).is_none());
        assert!(mb.board_mut(2).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_board_rejected() {
        let _ = MultiBoard::new(&[]);
    }
}
