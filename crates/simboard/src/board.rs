//! [`SimBoard`]: the complete simulated board behind [`jbits::Xhwif`].
//!
//! Owns a SelectMAP port and lazily (re)decodes the fabric after every
//! configuration — including partial reconfigurations, where flip-flop
//! state *outside* the reconfigured region survives, as it does on real
//! hardware performing dynamic partial reconfiguration.

use crate::fabric::{DecodeError, FabricModel, FabricSim};
use crate::port::SelectMap;
use bitstream::{Bitstream, ConfigError};
use jbits::Xhwif;
use std::collections::HashMap;
use std::time::Duration;
use virtex::{Device, IobCoord, TileCoord};

/// A simulated single-FPGA board.
#[derive(Debug)]
pub struct SimBoard {
    port: SelectMap,
    sim: Option<FabricSim>,
    /// Sticky external pad drives, reapplied across reconfigurations.
    pad_drives: HashMap<(TileCoord, u8), bool>,
    user_clocks: u64,
}

impl SimBoard {
    /// A powered-up board with a blank `device`.
    pub fn new(device: Device) -> Self {
        SimBoard {
            port: SelectMap::new(device),
            sim: None,
            pad_drives: HashMap::new(),
            user_clocks: 0,
        }
    }

    /// Rebuild the fabric simulation from the current configuration,
    /// carrying FF state over from the previous model where slices
    /// persist (partial-reconfiguration semantics).
    fn redecode(&mut self) -> Result<(), DecodeError> {
        let model = FabricModel::decode(self.port.interpreter().memory())?;
        let mut next = FabricSim::new(model)?;
        if let Some(prev) = &self.sim {
            next.carry_state_from(prev);
        }
        for (&(tile, pad), &v) in &self.pad_drives {
            next.set_pad(tile, pad, v);
        }
        next.settle()?;
        self.sim = Some(next);
        Ok(())
    }

    /// The live fabric simulation (None until something configures).
    pub fn fabric(&self) -> Option<&FabricSim> {
        self.sim.as_ref()
    }

    /// Drive an input pad.
    pub fn set_pad(&mut self, io: IobCoord, value: bool) {
        self.pad_drives.insert((io.tile, io.pad), value);
        if let Some(sim) = &mut self.sim {
            sim.set_pad(io.tile, io.pad, value);
            let _ = sim.settle();
        }
    }

    /// Read an output pad.
    pub fn get_pad(&self, io: IobCoord) -> bool {
        self.sim
            .as_ref()
            .map(|s| s.get_pad(io.tile, io.pad))
            .unwrap_or(false)
    }

    /// Cumulative configuration time (SelectMAP model).
    pub fn config_time(&self) -> Duration {
        self.port.total_config_time()
    }

    /// Bytes pushed through the configuration port.
    pub fn config_bytes(&self) -> u64 {
        self.port.bytes_loaded()
    }

    /// User clock cycles stepped so far.
    pub fn user_clocks(&self) -> u64 {
        self.user_clocks
    }

    /// The configuration port (for readback etc.).
    pub fn port_mut(&mut self) -> &mut SelectMap {
        &mut self.port
    }

    /// The configuration port, read-only (stats, fault-injector state).
    pub fn port(&self) -> &SelectMap {
        &self.port
    }

    /// Install (or clear) a fault injector on the board's configuration
    /// port — see [`crate::port::FaultInjector`].
    pub fn set_fault_injector(&mut self, injector: Option<crate::port::FaultInjector>) {
        self.port.set_fault_injector(injector);
    }

    /// Configure from a compressed wire container ([`wire`] `JWC1`),
    /// decoded stream-wise on the device side, then rebuild the fabric
    /// simulation — the wire-format counterpart of
    /// [`Xhwif::set_configuration`]. Delta sections XOR against the
    /// board's own resident frames, so incremental containers are only
    /// valid while the target region holds base content (the same
    /// contract as plain incremental partials, now checksum-enforced).
    pub fn set_configuration_wire(&mut self, container: &[u8]) -> Result<(), ConfigError> {
        self.port.load_wire(container)?;
        self.redecode()
            .map_err(|e| ConfigError::InvalidConfiguration(e.to_string()))
    }

    /// Inject a single-event upset: flip one configuration bit in place,
    /// exactly as ionizing radiation would, and let the (changed) circuit
    /// keep running with its flip-flop state intact. Returns `false` for
    /// an out-of-range position or if the flip produces an illegal
    /// configuration (in which case the bit is restored).
    pub fn inject_upset(&mut self, frame: usize, bit: usize) -> bool {
        if frame >= self.port.interpreter().memory().frame_count()
            || bit >= self.port.interpreter().memory().geometry().frame_bits()
        {
            return false;
        }
        let mem = self.port.interpreter_mut().memory_mut();
        let old = mem.get_bit(frame, bit);
        mem.set_bit(frame, bit, !old);
        if self.redecode().is_err() {
            // e.g. the flip created wire contention; real silicon would
            // be damaged — we restore instead.
            let mem = self.port.interpreter_mut().memory_mut();
            mem.set_bit(frame, bit, old);
            let _ = self.redecode();
            return false;
        }
        true
    }

    /// The CAPTURE facility: snapshot every live flip-flop value into its
    /// capture slot in the configuration plane, so readback (or
    /// [`jbits::Jbits::get_captured_ff`] over [`Xhwif::get_configuration`])
    /// can observe the running design's state.
    pub fn capture(&mut self) {
        let Some(sim) = &self.sim else { return };
        let states = sim.ff_states();
        let mut jb = jbits::Jbits::from_memory(self.port.interpreter().memory().clone());
        for (tile, slice, x_ff, value) in states {
            jb.set_captured_ff(tile, slice, x_ff, value);
        }
        let words: Vec<u32> = jb.memory().as_words().to_vec();
        self.port.interpreter_mut().memory_mut().load_words(&words);
    }
}

impl Xhwif for SimBoard {
    fn device(&self) -> Device {
        self.port.device()
    }

    fn set_configuration(&mut self, bits: &Bitstream) -> Result<(), ConfigError> {
        self.port.load(bits)?;
        // Surface decode problems as configuration failures: on real
        // hardware a contending configuration damages the part.
        self.redecode()
            .map_err(|e| ConfigError::InvalidConfiguration(e.to_string()))
    }

    fn get_configuration(&mut self) -> Result<Vec<u32>, ConfigError> {
        Ok(self.port.interpreter().memory().as_words().to_vec())
    }

    fn get_configuration_region(
        &mut self,
        range: bitstream::FrameRange,
    ) -> Result<Vec<u32>, ConfigError> {
        let mut out = Vec::with_capacity(range.len);
        self.get_configuration_region_into(range, &mut out)?;
        Ok(out)
    }

    fn get_configuration_region_into(
        &mut self,
        range: bitstream::FrameRange,
        out: &mut Vec<u32>,
    ) -> Result<(), ConfigError> {
        // Run the real frame-addressed readback command sequence against
        // the device-side interpreter, instead of the trait's dump-and-
        // slice fallback: the region verifier then exercises the same
        // FAR/RCFG/FDRO path hardware would.
        bitstream::readback::readback_frames_into(self.port.interpreter_mut(), range, out)
    }

    fn clock_step(&mut self, cycles: u64) {
        if let Some(sim) = &mut self.sim {
            for _ in 0..cycles {
                let _ = sim.clock();
            }
        }
        self.user_clocks += cycles;
    }

    fn reset(&mut self) {
        if let Some(sim) = &mut self.sim {
            sim.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::ConfigMemory;

    #[test]
    fn blank_board_reads_low_pads() {
        let b = SimBoard::new(Device::XCV50);
        assert!(!b.get_pad(IobCoord::new(TileCoord::new(-1, 0), 0)));
        assert_eq!(b.config_bytes(), 0);
    }

    #[test]
    fn configure_then_query() {
        let mem = ConfigMemory::new(Device::XCV50);
        let bs = bitstream::full_bitstream(&mem);
        let mut b = SimBoard::new(Device::XCV50);
        b.set_configuration(&bs).unwrap();
        assert!(b.fabric().is_some());
        assert!(b.config_time() > Duration::ZERO);
        let cfg = b.get_configuration().unwrap();
        assert_eq!(cfg.len(), mem.as_words().len());
    }

    #[test]
    fn region_readback_matches_whole_device_slice() {
        let mut mem = ConfigMemory::new(Device::XCV50);
        for f in 0..mem.frame_count() {
            mem.frame_mut(f)[1] = 0x1000 + f as u32;
        }
        let bs = bitstream::full_bitstream(&mem);
        let mut b = SimBoard::new(Device::XCV50);
        // Arbitrary frame content is not a legal circuit, so load through
        // the port (no fabric decode) — the readback path is what's
        // under test here.
        b.port_mut().load(&bs).unwrap();
        let fw = mem.frame_words();
        let whole = b.get_configuration().unwrap();
        let range = bitstream::FrameRange::new(12, 7);
        let region = b.get_configuration_region(range).unwrap();
        assert_eq!(region.len(), range.len * fw);
        assert_eq!(
            region,
            whole[range.start * fw..(range.start + range.len) * fw]
        );
    }
}
