//! Service counters and latency histograms, backed by the shared
//! [`obs`] registry.
//!
//! The instruments themselves (`Counter`/`Gauge`/`Histogram`) were
//! promoted into the `obs` crate; this module keeps the fleet-facing
//! shape — a [`FleetMetrics`] struct of named fields workers poke
//! directly — while registering every instrument in a per-fleet
//! [`obs::Registry`] so the whole service state is exportable as one
//! [`obs::Snapshot`] (Prometheus text, JSON, table). The instrument
//! names and semantics are exactly the E10 example/bench counters;
//! only their storage moved.
//!
//! Latencies are *simulated* durations from the SelectMAP byte-cycle
//! model, not wall-clock — the numbers answer "what would this fleet's
//! boards be doing", which is what the paper's download-time argument
//! is about.

pub use obs::{Counter, Gauge, Histogram};
use std::sync::Arc;

/// The fleet's instrumentation, shared by every worker.
///
/// Each instrument is also registered (under the `fleet_` prefix) in
/// the [`FleetMetrics::registry`] attached to this instance, so
/// `metrics.registry().snapshot()` exports the same numbers the fields
/// read.
#[derive(Debug)]
pub struct FleetMetrics {
    registry: Arc<obs::Registry>,
    /// Requests accepted into the queue.
    pub requests_enqueued: Arc<Counter>,
    /// Requests served to completion (verified).
    pub requests_served: Arc<Counter>,
    /// Requests that exhausted their retry budget.
    pub requests_failed: Arc<Counter>,
    /// Bitstream downloads attempted (including retries).
    pub downloads: Arc<Counter>,
    /// Bytes pushed through configuration ports.
    pub download_bytes: Arc<Counter>,
    /// Bytes read back for verification.
    pub readback_bytes: Arc<Counter>,
    /// Download attempts that ended in a port error or failed verify.
    pub retries: Arc<Counter>,
    /// Region readback compares that found a mismatch.
    pub verify_failures: Arc<Counter>,
    /// Store lookups resolved from an already-generated partial.
    pub store_hits: Arc<Counter>,
    /// Store lookups that had to generate.
    pub store_misses: Arc<Counter>,
    /// Requests served without a dedicated download: the variant was
    /// already resident, or the request rode a coalesced in-flight
    /// download for the same `(region, variant)`.
    pub resident_hits: Arc<Counter>,
    /// Requests that attached to an in-flight download for the same
    /// `(region, variant)` instead of issuing their own.
    pub coalesced: Arc<Counter>,
    /// Requests refused at admission because the shard queue was full.
    pub rejected: Arc<Counter>,
    /// Low-priority requests dropped at admission past the shed
    /// watermark.
    pub shed: Arc<Counter>,
    /// Queued requests migrated between shards at a rebalance barrier.
    pub stolen: Arc<Counter>,
    /// Slot migrations the defragmenter completed (verified relocations
    /// of resident regions into lower column slots).
    pub migrations: Arc<Counter>,
    /// Migration attempts that faulted and were retried or abandoned.
    pub migration_retries: Arc<Counter>,
    /// Queue depth high-water mark (peak per-shard backlog).
    pub queue_depth: Arc<Gauge>,
    /// Fleet-wide slot fragmentation (free holes below each board's
    /// high-water slot, summed): recorded at run start and end, so
    /// `high_water` is the initial level and `current` the final one.
    pub fragmentation: Arc<Gauge>,
    /// Simulated port time per download attempt.
    pub download_latency: Arc<Histogram>,
    /// Simulated port time per verification readback.
    pub verify_latency: Arc<Histogram>,
    /// Simulated end-to-end port time per request (download + verify +
    /// retries + backoff).
    pub request_latency: Arc<Histogram>,
    /// Virtual arrival-to-completion latency per request (queue wait +
    /// downloads + retries), on the wide scheduler buckets.
    pub e2e_latency: Arc<Histogram>,
}

impl Default for FleetMetrics {
    fn default() -> FleetMetrics {
        FleetMetrics::new()
    }
}

impl FleetMetrics {
    /// Fresh, zeroed instrumentation in its own registry (each fleet
    /// keeps isolated numbers; nothing leaks across instances).
    pub fn new() -> FleetMetrics {
        FleetMetrics::in_registry(Arc::new(obs::Registry::new()))
    }

    /// Instrumentation registered in `registry` — inject the
    /// [`obs::global`] registry (wrapped in an `Arc`) to fold fleet
    /// counters into a process-wide snapshot.
    pub fn in_registry(registry: Arc<obs::Registry>) -> FleetMetrics {
        let c = |name: &str| registry.counter(name, &[]);
        FleetMetrics {
            requests_enqueued: c("fleet_requests_enqueued_total"),
            requests_served: c("fleet_requests_served_total"),
            requests_failed: c("fleet_requests_failed_total"),
            downloads: c("fleet_downloads_total"),
            download_bytes: c("fleet_download_bytes_total"),
            readback_bytes: c("fleet_readback_bytes_total"),
            retries: c("fleet_retries_total"),
            verify_failures: c("fleet_verify_failures_total"),
            store_hits: c("fleet_store_hits_total"),
            store_misses: c("fleet_store_misses_total"),
            resident_hits: c("fleet_resident_hits_total"),
            coalesced: c("fleet_coalesced_total"),
            rejected: c("fleet_rejected_total"),
            shed: c("fleet_shed_total"),
            stolen: c("fleet_stolen_total"),
            migrations: c("fleet_migrations_total"),
            migration_retries: c("fleet_migration_retries_total"),
            queue_depth: registry.gauge("fleet_queue_depth", &[]),
            fragmentation: registry.gauge("fleet_fragmentation_slots", &[]),
            download_latency: registry.histogram_with(
                "fleet_download_latency_us",
                &[],
                &obs::presets::SELECTMAP_LATENCY_US,
            ),
            verify_latency: registry.histogram_with(
                "fleet_verify_latency_us",
                &[],
                &obs::presets::SELECTMAP_LATENCY_US,
            ),
            request_latency: registry.histogram_with(
                "fleet_request_latency_us",
                &[],
                &obs::presets::SELECTMAP_LATENCY_US,
            ),
            e2e_latency: registry.histogram_with(
                "fleet_e2e_latency_us",
                &[],
                &obs::presets::FLEET_VIRTUAL_US,
            ),
            registry,
        }
    }

    /// Fold one shard's per-run tallies into shard-labelled counters.
    ///
    /// Label cardinality is O(shards), never O(boards): a 10k-board
    /// fleet behind 64 shards registers 64 label sets, not 10 000.
    pub fn record_shard(&self, shard: usize, requests: u64, busy_us: u64) {
        let label = shard.to_string();
        self.registry
            .counter("fleet_shard_requests_total", &[("shard", label.as_str())])
            .add(requests);
        self.registry
            .counter("fleet_shard_busy_us_total", &[("shard", label.as_str())])
            .add(busy_us);
    }

    /// The registry holding this fleet's instruments; snapshot it to
    /// export the service state.
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// Fraction of store lookups served from an existing partial.
    pub fn store_hit_rate(&self) -> f64 {
        let h = self.store_hits.get();
        let m = self.store_misses.get();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Multi-line human-readable report.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "requests: {} served / {} failed / {} enqueued (queue high-water {})\n",
            self.requests_served.get(),
            self.requests_failed.get(),
            self.requests_enqueued.get(),
            self.queue_depth.high_water(),
        ));
        s.push_str(&format!(
            "downloads: {} ({} bytes), readback {} bytes, {} retries, {} verify failures\n",
            self.downloads.get(),
            self.download_bytes.get(),
            self.readback_bytes.get(),
            self.retries.get(),
            self.verify_failures.get(),
        ));
        s.push_str(&format!(
            "store: {:.0}% hit rate ({} hits / {} misses), {} resident fast-paths\n",
            100.0 * self.store_hit_rate(),
            self.store_hits.get(),
            self.store_misses.get(),
            self.resident_hits.get(),
        ));
        s.push_str(&format!(
            "download latency: {}\n",
            self.download_latency.summary()
        ));
        s.push_str(&format!(
            "verify latency:   {}\n",
            self.verify_latency.summary()
        ));
        s.push_str(&format!(
            "request latency:  {}",
            self.request_latency.summary()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        for us in [1u64, 3, 9, 30, 90, 300, 900, 3000, 9000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), Duration::from_micros(9000));
        // The median sample (90 µs) lands in the ≤100 µs bucket.
        assert_eq!(h.quantile(0.5), Duration::from_micros(100));
        // The top quantile falls in the overflow bucket → observed max.
        assert_eq!(h.quantile(1.0), Duration::from_micros(9000));
        assert!(h.mean() > Duration::from_micros(1000));
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        g.inc();
        assert_eq!(g.current(), 2);
        assert_eq!(g.high_water(), 2);
    }

    #[test]
    fn hit_rate_handles_empty() {
        let m = FleetMetrics::new();
        assert_eq!(m.store_hit_rate(), 0.0);
        m.store_hits.add(3);
        m.store_misses.inc();
        assert!((m.store_hit_rate() - 0.75).abs() < 1e-12);
        assert!(m.report().contains("75% hit rate"));
    }

    #[test]
    fn fields_and_registry_snapshot_agree() {
        let m = FleetMetrics::new();
        m.downloads.add(4);
        m.queue_depth.inc();
        m.download_latency.record(Duration::from_micros(30));
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter_total("fleet_downloads_total"), Some(4));
        assert!(snap.has_metric("fleet_queue_depth"));
        assert!(snap.has_metric("fleet_download_latency_us"));
        // Every instrument is registered up front, zeroed or not.
        assert_eq!(snap.samples.len(), 23);
        // Two fleets never share numbers.
        let other = FleetMetrics::new();
        assert_eq!(other.downloads.get(), 0);
    }

    #[test]
    fn shard_labels_scale_with_shards_not_boards() {
        let m = FleetMetrics::new();
        let base = m.registry().snapshot().samples.len();
        for shard in 0..4 {
            m.record_shard(shard, 100, 5_000);
        }
        let after = m.registry().snapshot().samples.len();
        assert_eq!(after, base + 8, "two labelled counters per shard");
        // Re-recording the same shards (another run) must not mint new
        // label sets — counters accumulate instead.
        for shard in 0..4 {
            m.record_shard(shard, 1, 1);
        }
        assert_eq!(m.registry().snapshot().samples.len(), after);
    }
}
