//! Service counters and latency histograms.
//!
//! Everything here is lock-free (`Ordering::Relaxed` atomics): worker
//! threads record on the serving path, and exactness across a data race
//! is irrelevant for operational metrics. Latencies are *simulated*
//! durations from the SelectMAP byte-cycle model, not wall-clock — the
//! numbers answer "what would this fleet's boards be doing", which is
//! what the paper's download-time argument is about.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge with a high-water mark (queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicI64,
    high: AtomicI64,
}

impl Gauge {
    /// Raise the gauge by one, updating the high-water mark.
    pub fn inc(&self) {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower the gauge by one.
    pub fn dec(&self) {
        self.current.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current level.
    pub fn current(&self) -> i64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Highest level seen.
    pub fn high_water(&self) -> i64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds, in microseconds. Downloads on the
/// 50 MHz byte-wide port range from a few µs (a one-column partial) to a
/// few ms (a complete bitstream), so log-ish buckets over 1 µs – 5 ms
/// cover the service; a final overflow bucket takes the rest.
const BUCKET_BOUNDS_US: [u64; 12] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000];

/// A fixed-bucket latency histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [Counter; BUCKET_BOUNDS_US.len() + 1],
    count: Counter,
    sum_ns: Counter,
    max_ns: AtomicU64,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros() as u64;
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].inc();
        self.count.inc();
        self.sum_ns.add(d.as_nanos() as u64);
        self.max_ns
            .fetch_max(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> Duration {
        match self.count() {
            0 => Duration::ZERO,
            n => Duration::from_nanos(self.sum_ns.get() / n),
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Upper bound of the bucket containing the `p`-quantile (0 < p ≤ 1);
    /// the overflow bucket reports the observed maximum.
    pub fn quantile(&self, p: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64) * p).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.get();
            if seen >= target {
                return match BUCKET_BOUNDS_US.get(i) {
                    Some(&us) => Duration::from_micros(us),
                    None => self.max(),
                };
            }
        }
        self.max()
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:?} p50={:?} p99={:?} max={:?}",
            self.count(),
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// The fleet's instrumentation, shared by every worker.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Requests accepted into the queue.
    pub requests_enqueued: Counter,
    /// Requests served to completion (verified).
    pub requests_served: Counter,
    /// Requests that exhausted their retry budget.
    pub requests_failed: Counter,
    /// Bitstream downloads attempted (including retries).
    pub downloads: Counter,
    /// Bytes pushed through configuration ports.
    pub download_bytes: Counter,
    /// Bytes read back for verification.
    pub readback_bytes: Counter,
    /// Download attempts that ended in a port error or failed verify.
    pub retries: Counter,
    /// Region readback compares that found a mismatch.
    pub verify_failures: Counter,
    /// Store lookups resolved from an already-generated partial.
    pub store_hits: Counter,
    /// Store lookups that had to generate.
    pub store_misses: Counter,
    /// Requests served without any download (variant already resident).
    pub resident_hits: Counter,
    /// Live queue depth and its high-water mark.
    pub queue_depth: Gauge,
    /// Simulated port time per download attempt.
    pub download_latency: Histogram,
    /// Simulated port time per verification readback.
    pub verify_latency: Histogram,
    /// Simulated end-to-end port time per request (download + verify +
    /// retries + backoff).
    pub request_latency: Histogram,
}

impl FleetMetrics {
    /// Fresh, zeroed instrumentation.
    pub fn new() -> FleetMetrics {
        FleetMetrics::default()
    }

    /// Fraction of store lookups served from an existing partial.
    pub fn store_hit_rate(&self) -> f64 {
        let h = self.store_hits.get();
        let m = self.store_misses.get();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Multi-line human-readable report.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "requests: {} served / {} failed / {} enqueued (queue high-water {})\n",
            self.requests_served.get(),
            self.requests_failed.get(),
            self.requests_enqueued.get(),
            self.queue_depth.high_water(),
        ));
        s.push_str(&format!(
            "downloads: {} ({} bytes), readback {} bytes, {} retries, {} verify failures\n",
            self.downloads.get(),
            self.download_bytes.get(),
            self.readback_bytes.get(),
            self.retries.get(),
            self.verify_failures.get(),
        ));
        s.push_str(&format!(
            "store: {:.0}% hit rate ({} hits / {} misses), {} resident fast-paths\n",
            100.0 * self.store_hit_rate(),
            self.store_hits.get(),
            self.store_misses.get(),
            self.resident_hits.get(),
        ));
        s.push_str(&format!(
            "download latency: {}\n",
            self.download_latency.summary()
        ));
        s.push_str(&format!(
            "verify latency:   {}\n",
            self.verify_latency.summary()
        ));
        s.push_str(&format!(
            "request latency:  {}",
            self.request_latency.summary()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        for us in [1u64, 3, 9, 30, 90, 300, 900, 3000, 9000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), Duration::from_micros(9000));
        // The median sample (90 µs) lands in the ≤100 µs bucket.
        assert_eq!(h.quantile(0.5), Duration::from_micros(100));
        // The top quantile falls in the overflow bucket → observed max.
        assert_eq!(h.quantile(1.0), Duration::from_micros(9000));
        assert!(h.mean() > Duration::from_micros(1000));
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        g.inc();
        assert_eq!(g.current(), 2);
        assert_eq!(g.high_water(), 2);
    }

    #[test]
    fn hit_rate_handles_empty() {
        let m = FleetMetrics::new();
        assert_eq!(m.store_hit_rate(), 0.0);
        m.store_hits.add(3);
        m.store_misses.inc();
        assert!((m.store_hit_rate() - 0.75).abs() < 1e-12);
        assert!(m.report().contains("75% hit rate"));
    }
}
