//! The fleet service facade: real `SimBoard`s behind the event-driven
//! scheduler.
//!
//! Each request means "make region R of some board run variant V, step
//! the user clock, return the module's pad outputs". The facade wraps
//! the generic scheduler in [`crate::sched`] with a [`RealBackend`]
//! whose downloads go through [`jbits::Xhwif`] exactly as JPG's own
//! download path does, verified by region-scoped readback compare and
//! retried with exponential backoff when the port faults or
//! verification fails. All timing is the simulated SelectMAP
//! byte-cycle model; the scheduler's virtual clock replaces the old
//! thread-per-board worker pool, so a `Fleet` no longer spawns one OS
//! thread per board — worker threads multiplex shards of boards, and
//! results are deterministic for a fixed request stream.

use crate::library::ServingLibrary;
use crate::metrics::FleetMetrics;
pub use crate::sched::ServeMode;
use crate::sched::{
    self, Backend, DownloadResult, DownloadStatus, Flavor, Outcome, OutcomeKind, Priority,
    Resident, Resolved, SchedConfig, SimRequest,
};
use crate::store::StoredPartial;
use crate::FleetError;
use bitstream::Bitstream;
use jbits::Xhwif;
use simboard::port::{download_time, FaultInjector};
use simboard::SimBoard;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// On-the-wire encoding of partial downloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WireFormat {
    /// Raw SelectMAP packet stream, as [`jpg`] emits it.
    #[default]
    Plain,
    /// [`wire`] `JWC1` containers: partials cross the port compressed
    /// and are decoded stream-wise device-side. Full bitstreams (the
    /// [`ServeMode::FullSwap`] baseline) always ship plain — that mode
    /// models the no-partial-reconfiguration legacy flow.
    Compressed,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Download flavor.
    pub mode: ServeMode,
    /// Download attempts per request before giving up (port faults and
    /// verification failures both consume attempts).
    pub max_attempts: u32,
    /// First retry backoff (simulated port idle time); doubles per
    /// subsequent retry of the same request.
    pub backoff: Duration,
    /// Wire encoding for partial downloads.
    pub wire: WireFormat,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            mode: ServeMode::Partial,
            max_attempts: 16,
            backoff: Duration::from_micros(20),
            wire: WireFormat::Plain,
        }
    }
}

/// One unit of work for the fleet.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-assigned identity, echoed in the response.
    pub id: u64,
    /// Region index in the library.
    pub region: usize,
    /// Variant index in the region's catalogue.
    pub variant: usize,
    /// Input pads to drive before clocking, by pad name.
    pub drive: Vec<(String, bool)>,
    /// Whether to pulse the board reset before clocking (fresh state).
    pub reset: bool,
    /// User clock cycles to step after reconfiguration.
    pub clocks: u64,
}

impl Request {
    /// A request with no pad drives and no reset.
    pub fn new(id: u64, region: usize, variant: usize, clocks: u64) -> Request {
        Request {
            id,
            region,
            variant,
            drive: Vec::new(),
            reset: false,
            clocks,
        }
    }
}

/// The outcome of one request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Request identity.
    pub id: u64,
    /// Board that served it.
    pub board: usize,
    /// Region served.
    pub region: usize,
    /// Variant served.
    pub variant: usize,
    /// Pad values after clocking, in catalogue pad order.
    pub outputs: Vec<(String, bool)>,
    /// Download attempts spent (0 = no dedicated download).
    pub attempts: u32,
    /// Whether the store already held the generated bitstreams.
    pub store_hit: bool,
    /// Whether the variant was already resident (no download needed).
    pub resident_hit: bool,
    /// Whether the request rode another request's in-flight download of
    /// the same `(region, variant)`.
    pub coalesced: bool,
    /// Configuration bytes pushed for this request.
    pub bytes: u64,
    /// Simulated port time consumed (downloads + readbacks + backoff).
    pub port_time: Duration,
    /// Failure, if the request exhausted its attempts.
    pub error: Option<String>,
}

/// One real board: the simulated fabric plus its recycled readback
/// scratch (region compares would otherwise reallocate per verify).
struct RealBoard {
    board: SimBoard,
    readback: Vec<u32>,
}

/// Mutable fleet state persisted across runs.
struct FleetInner {
    boards: Vec<RealBoard>,
    resident: Vec<Vec<Resident>>,
}

/// The service.
pub struct Fleet {
    library: Arc<ServingLibrary>,
    cfg: FleetConfig,
    inner: Mutex<FleetInner>,
    metrics: FleetMetrics,
    init_time: Duration,
}

/// The scheduler backend over real boards: resolution through the
/// [`ServingLibrary`]/[`crate::store::PartialStore`], downloads through
/// XHWIF, outputs from the simulated fabric.
struct RealBackend<'a> {
    library: &'a ServingLibrary,
    requests: &'a [Request],
    frame_words: usize,
    wire: WireFormat,
}

impl RealBackend<'_> {
    fn catalog(&self, region: u32) -> &crate::library::RegionCatalog {
        &self.library.regions()[region as usize]
    }
}

impl Backend for RealBackend<'_> {
    type Artifact = Arc<StoredPartial>;
    type Board = RealBoard;

    fn resolve(&self, req: &SimRequest) -> Result<(Self::Artifact, Resolved), String> {
        let (stored, hit) = self
            .library
            .resolve(req.region as usize, req.variant as usize);
        let stored = stored.map_err(|e| e.to_string())?;
        let verify_words: usize = self
            .catalog(req.region)
            .verify_ranges
            .iter()
            .map(|r| (r.len + 1) * self.frame_words)
            .sum();
        // Under the compressed wire format the scheduler's cost model
        // must price what actually crosses the port: the container
        // bytes. Readback replies and full bitstreams stay plain.
        let (bytes_incremental, bytes_wholesale) = match self.wire {
            WireFormat::Plain => (
                stored.incremental.byte_len() as u64,
                stored.wholesale.byte_len() as u64,
            ),
            WireFormat::Compressed => (
                stored.wire_incremental.bytes.len() as u64,
                stored.wire_wholesale.bytes.len() as u64,
            ),
        };
        let res = Resolved {
            store_hit: hit,
            generation: stored.key.epoch,
            bytes_incremental,
            bytes_wholesale,
            bytes_full: stored.full.byte_len() as u64,
            bytes_verify: verify_words as u64 * 4,
        };
        Ok((stored, res))
    }

    fn download(
        &self,
        board: &mut RealBoard,
        _global: u32,
        art: &Arc<StoredPartial>,
        flavor: Flavor,
        _res: &Resolved,
    ) -> DownloadResult {
        // Partial flavors optionally cross the port as compressed wire
        // containers, decoded stream-wise device-side; full swaps model
        // the legacy no-partial-reconfiguration flow and always ship
        // plain.
        let (configured, bytes) = match (self.wire, flavor) {
            (WireFormat::Compressed, Flavor::Incremental) => {
                let c = &art.wire_incremental.bytes;
                (board.board.set_configuration_wire(c), c.len())
            }
            (WireFormat::Compressed, Flavor::Wholesale) => {
                let c = &art.wire_wholesale.bytes;
                (board.board.set_configuration_wire(c), c.len())
            }
            _ => {
                let stream: &Bitstream = match flavor {
                    Flavor::Incremental => &art.incremental,
                    Flavor::Wholesale => &art.wholesale,
                    Flavor::Full => &art.full,
                };
                (board.board.set_configuration(stream), stream.byte_len())
            }
        };
        let dl = download_time(bytes).as_nanos() as u64;
        let bytes = bytes as u64;
        if let Err(e) = configured {
            return DownloadResult {
                status: DownloadStatus::PortFault(e.to_string()),
                bytes,
                download_ns: dl,
                verify_ns: 0,
                readback_bytes: 0,
            };
        }
        // Region-scoped readback compare against the stored expectation
        // (costs port time proportional to the region, not the device —
        // the point of `Xhwif::get_configuration_region`).
        let cat = &self.library.regions()[art.key.region];
        board.readback.clear();
        let mut reply_words = 0usize;
        for r in &cat.verify_ranges {
            match board
                .board
                .get_configuration_region_into(*r, &mut board.readback)
            {
                // The physical reply carries one pad frame per read.
                Ok(()) => reply_words += (r.len + 1) * self.frame_words,
                Err(_) => {
                    return DownloadResult {
                        status: DownloadStatus::VerifyMismatch,
                        bytes,
                        download_ns: dl,
                        verify_ns: 0,
                        readback_bytes: 0,
                    }
                }
            }
        }
        let verify_bytes = reply_words as u64 * 4;
        let verify_ns = download_time(reply_words * 4).as_nanos() as u64;
        let status = if board.readback == art.expected {
            DownloadStatus::Verified
        } else {
            DownloadStatus::VerifyMismatch
        };
        DownloadResult {
            status,
            bytes,
            download_ns: dl,
            verify_ns,
            readback_bytes: verify_bytes,
        }
    }

    fn finish(&self, board: &mut RealBoard, region: u32, payload: u32) -> Vec<(String, bool)> {
        // The region now verifiably runs the variant: drive, clock, read.
        let req = &self.requests[payload as usize];
        let cat = self.catalog(region);
        for (name, v) in &req.drive {
            if let Some(io) = cat.pad(name) {
                board.board.set_pad(io, *v);
            }
        }
        if req.reset {
            board.board.reset();
        }
        board.board.clock_step(req.clocks);
        cat.pads
            .iter()
            .map(|(n, io)| (n.clone(), board.board.get_pad(*io)))
            .collect()
    }
}

impl Fleet {
    /// A fleet of `boards` blank boards, each configured with the
    /// library's base bitstream.
    pub fn new(
        library: Arc<ServingLibrary>,
        boards: usize,
        cfg: FleetConfig,
    ) -> Result<Fleet, FleetError> {
        assert!(boards > 0, "a fleet needs at least one board");
        let base = library.base_bitstream();
        let regions = library.regions().len();
        let mut pool = Vec::new();
        let mut init_time = Duration::ZERO;
        for _ in 0..boards {
            let mut board = SimBoard::new(library.device());
            board
                .set_configuration(&base)
                .map_err(|e| FleetError::Config(format!("base download: {e}")))?;
            init_time += download_time(base.byte_len());
            pool.push(RealBoard {
                board,
                readback: Vec::new(),
            });
        }
        Ok(Fleet {
            library,
            cfg,
            inner: Mutex::new(FleetInner {
                boards: pool,
                resident: vec![vec![Resident::Base; regions]; boards],
            }),
            metrics: FleetMetrics::new(),
            init_time,
        })
    }

    /// Install a deterministic fault injector on every board's port,
    /// seeded per board so runs are reproducible board-by-board.
    pub fn inject_faults(&mut self, rate: f64, seed: u64) {
        let inner = self.inner.get_mut().expect("fleet lock");
        for (i, slot) in inner.boards.iter_mut().enumerate() {
            slot.board.set_fault_injector(if rate > 0.0 {
                Some(FaultInjector::new(
                    rate,
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64),
                ))
            } else {
                None
            });
        }
    }

    /// Number of boards.
    pub fn boards(&self) -> usize {
        self.inner.lock().expect("fleet lock").boards.len()
    }

    /// The service metrics.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// Simulated port time spent downloading base bitstreams at
    /// construction (not part of any run's makespan).
    pub fn init_time(&self) -> Duration {
        self.init_time
    }

    /// Serve `requests` to completion across all boards through the
    /// event-driven scheduler. Responses come back sorted by request
    /// id. Can be called again; board state (resident variants) persists
    /// between runs, and each report's makespan covers only its own run.
    pub fn run(&self, requests: Vec<Request>) -> FleetReport {
        if requests.is_empty() {
            return FleetReport {
                responses: Vec::new(),
                makespan: Duration::ZERO,
                served: 0,
                failed: 0,
            };
        }
        let mut inner = self.inner.lock().expect("fleet lock");
        let nboards = inner.boards.len();
        let trace: Vec<SimRequest> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| SimRequest {
                id: r.id,
                at: crate::clock::Vt::ZERO,
                region: r.region as u32,
                variant: r.variant as u32,
                priority: Priority::Normal,
                payload: i as u32,
            })
            .collect();
        let backend = RealBackend {
            library: &self.library,
            requests: &requests,
            frame_words: virtex::ConfigGeometry::for_device(self.library.device()).frame_words(),
            wire: self.cfg.wire,
        };
        let sched_cfg = SchedConfig {
            mode: self.cfg.mode,
            max_attempts: self.cfg.max_attempts,
            backoff: self.cfg.backoff,
            // One board per shard up to a cardinality-bounded cap: the
            // schedule stays per-board, but metrics labels stay O(64).
            shards: nboards.min(64),
            workers: 0,
            window: Duration::from_micros(50),
            queue_cap: usize::MAX,
            shed_watermark: usize::MAX,
            coalesce: true,
            log_events: false,
            // The real backend reconfigures fixed floorplan regions; it
            // has no relocation path, so the defragmenter stays off.
            defrag: None,
        };
        let boards = std::mem::take(&mut inner.boards);
        let resident = std::mem::take(&mut inner.resident);
        let out = sched::run(&backend, &self.metrics, &sched_cfg, trace, boards, resident);
        inner.boards = out.states;
        inner.resident = out.resident;
        drop(inner);

        let responses: Vec<Response> = out
            .outcomes
            .into_iter()
            .map(|o| outcome_to_response(&o))
            .collect();
        let makespan = Duration::from_nanos(out.busy_ns.iter().copied().max().unwrap_or(0));
        let served = responses.iter().filter(|r| r.error.is_none()).count() as u64;
        let failed = responses.len() as u64 - served;
        FleetReport {
            responses,
            makespan,
            served,
            failed,
        }
    }
}

fn outcome_to_response(o: &Outcome) -> Response {
    let (resident_hit, coalesced) = match o.kind {
        OutcomeKind::Served {
            resident,
            coalesced,
        } => (resident, coalesced),
        _ => (false, false),
    };
    Response {
        id: o.id,
        board: o.board.unwrap_or(0) as usize,
        region: o.region as usize,
        variant: o.variant as usize,
        outputs: o.outputs.clone(),
        attempts: o.attempts,
        store_hit: o.store_hit,
        resident_hit,
        coalesced,
        bytes: o.bytes,
        port_time: Duration::from_nanos(o.port_ns),
        error: o.error.clone(),
    }
}

/// Summary of one [`Fleet::run`].
#[derive(Debug)]
pub struct FleetReport {
    /// Per-request outcomes, sorted by request id.
    pub responses: Vec<Response>,
    /// Longest per-board simulated port busy time for this run — the
    /// run's simulated wall-clock under the SelectMAP timing model.
    pub makespan: Duration,
    /// Requests served successfully.
    pub served: u64,
    /// Requests that exhausted their retries.
    pub failed: u64,
}

impl FleetReport {
    /// Served requests per second of simulated port time.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan.is_zero() {
            return f64::INFINITY;
        }
        self.served as f64 / self.makespan.as_secs_f64()
    }
}
