//! The fleet service: a pool of boards draining a shared request queue.
//!
//! Each request means "make region R of some board run variant V, step
//! the user clock, return the module's pad outputs". Workers (one per
//! board) pull the *cheapest* runnable request for their board — zero
//! frames when the variant is already resident, otherwise the region's
//! frame count through the SelectMAP byte-cycle model — download the
//! bitstream, verify it by region-scoped readback compare, and retry
//! with exponential backoff when the port faults or verification fails.
//!
//! All configuration traffic goes through [`jbits::Xhwif`], exactly as
//! JPG's own download path does; the pool happens to be `SimBoard`s, but
//! nothing in the serving loop knows that beyond pad I/O.

use crate::library::ServingLibrary;
use crate::metrics::FleetMetrics;
use crate::store::StoredPartial;
use crate::FleetError;
use bitstream::Bitstream;
use jbits::Xhwif;
use simboard::port::{download_time, FaultInjector};
use simboard::SimBoard;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which bitstream the fleet downloads per swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Partial bitstreams from the store (the JPG flow): incremental
    /// when the region still holds base content, wholesale otherwise.
    Partial,
    /// A complete bitstream per swap (the conventional-flow baseline the
    /// paper argues against).
    FullSwap,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Download flavor.
    pub mode: ServeMode,
    /// Download attempts per request before giving up (port faults and
    /// verification failures both consume attempts).
    pub max_attempts: u32,
    /// First retry backoff (simulated port idle time); doubles per
    /// subsequent retry of the same request.
    pub backoff: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            mode: ServeMode::Partial,
            max_attempts: 16,
            backoff: Duration::from_micros(20),
        }
    }
}

/// One unit of work for the fleet.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-assigned identity, echoed in the response.
    pub id: u64,
    /// Region index in the library.
    pub region: usize,
    /// Variant index in the region's catalogue.
    pub variant: usize,
    /// Input pads to drive before clocking, by pad name.
    pub drive: Vec<(String, bool)>,
    /// Whether to pulse the board reset before clocking (fresh state).
    pub reset: bool,
    /// User clock cycles to step after reconfiguration.
    pub clocks: u64,
}

impl Request {
    /// A request with no pad drives and no reset.
    pub fn new(id: u64, region: usize, variant: usize, clocks: u64) -> Request {
        Request {
            id,
            region,
            variant,
            drive: Vec::new(),
            reset: false,
            clocks,
        }
    }
}

/// The outcome of one request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Request identity.
    pub id: u64,
    /// Board that served it.
    pub board: usize,
    /// Region served.
    pub region: usize,
    /// Variant served.
    pub variant: usize,
    /// Pad values after clocking, in catalogue pad order.
    pub outputs: Vec<(String, bool)>,
    /// Download attempts spent (0 = variant was already resident).
    pub attempts: u32,
    /// Whether the store already held the generated bitstreams.
    pub store_hit: bool,
    /// Whether the variant was already resident (no download needed).
    pub resident_hit: bool,
    /// Configuration bytes pushed for this request.
    pub bytes: u64,
    /// Simulated port time consumed (downloads + readbacks + backoff).
    pub port_time: Duration,
    /// Failure, if the request exhausted its attempts.
    pub error: Option<String>,
}

/// What a board's region currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resident {
    /// Base content (fresh board or after rebase).
    Base,
    /// A verified variant.
    Variant(usize),
    /// A failed or unverified download landed here.
    Unknown,
}

/// One board plus its serving state.
struct BoardSlot {
    board: SimBoard,
    resident: Vec<Resident>,
    /// Simulated cumulative port busy time (the makespan component).
    busy: Duration,
    /// Readback scratch recycled across verifies — region compares on a
    /// busy worker would otherwise reallocate the reply buffer per pass.
    readback: Vec<u32>,
}

/// The service.
pub struct Fleet {
    library: Arc<ServingLibrary>,
    cfg: FleetConfig,
    slots: Vec<Mutex<BoardSlot>>,
    queue: Mutex<VecDeque<Request>>,
    metrics: FleetMetrics,
    init_time: Duration,
}

impl Fleet {
    /// A fleet of `boards` blank boards, each configured with the
    /// library's base bitstream.
    pub fn new(
        library: Arc<ServingLibrary>,
        boards: usize,
        cfg: FleetConfig,
    ) -> Result<Fleet, FleetError> {
        assert!(boards > 0, "a fleet needs at least one board");
        let base = library.base_bitstream();
        let regions = library.regions().len();
        let mut slots = Vec::new();
        let mut init_time = Duration::ZERO;
        for _ in 0..boards {
            let mut board = SimBoard::new(library.device());
            board
                .set_configuration(&base)
                .map_err(|e| FleetError::Config(format!("base download: {e}")))?;
            init_time += download_time(base.byte_len());
            slots.push(Mutex::new(BoardSlot {
                board,
                resident: vec![Resident::Base; regions],
                busy: Duration::ZERO,
                readback: Vec::new(),
            }));
        }
        Ok(Fleet {
            library,
            cfg,
            slots,
            queue: Mutex::new(VecDeque::new()),
            metrics: FleetMetrics::new(),
            init_time,
        })
    }

    /// Install a deterministic fault injector on every board's port,
    /// seeded per board so runs are reproducible board-by-board.
    pub fn inject_faults(&mut self, rate: f64, seed: u64) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let slot = slot.get_mut().expect("slot lock");
            slot.board.set_fault_injector(if rate > 0.0 {
                Some(FaultInjector::new(
                    rate,
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64),
                ))
            } else {
                None
            });
        }
    }

    /// Number of boards.
    pub fn boards(&self) -> usize {
        self.slots.len()
    }

    /// The service metrics.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// Simulated port time spent downloading base bitstreams at
    /// construction (not part of any run's makespan).
    pub fn init_time(&self) -> Duration {
        self.init_time
    }

    /// Serve `requests` to completion across all boards concurrently.
    /// Responses come back sorted by request id. Can be called again;
    /// board state (resident variants, cumulative busy time) persists
    /// between runs, but each report's makespan covers only its own run.
    pub fn run(&self, requests: Vec<Request>) -> FleetReport {
        for _ in &requests {
            self.metrics.requests_enqueued.inc();
            self.metrics.queue_depth.inc();
        }
        *self.queue.lock().expect("queue lock") = requests.into();

        let busy_before: Vec<Duration> = self
            .slots
            .iter()
            .map(|s| s.lock().expect("slot lock").busy)
            .collect();
        let responses = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for i in 0..self.slots.len() {
                let responses = &responses;
                scope.spawn(move || loop {
                    let req = {
                        let mut q = self.queue.lock().expect("queue lock");
                        match self.pick_for_board(i, &mut q) {
                            Some(r) => r,
                            None => break,
                        }
                    };
                    self.metrics.queue_depth.dec();
                    let resp = self.serve(i, req);
                    responses.lock().expect("responses lock").push(resp);
                });
            }
        });

        let mut responses = responses.into_inner().expect("responses lock");
        responses.sort_by_key(|r| r.id);
        let makespan = self
            .slots
            .iter()
            .zip(&busy_before)
            .map(|(s, &b0)| s.lock().expect("slot lock").busy - b0)
            .max()
            .unwrap_or(Duration::ZERO);
        let served = responses.iter().filter(|r| r.error.is_none()).count() as u64;
        let failed = responses.len() as u64 - served;
        FleetReport {
            responses,
            makespan,
            served,
            failed,
        }
    }

    /// Pop the cheapest runnable request for board `i`: fewest frames to
    /// rewrite under the current resident configuration (FIFO among
    /// ties), which through the byte-per-cycle SelectMAP model is also
    /// the shortest download.
    fn pick_for_board(&self, i: usize, q: &mut VecDeque<Request>) -> Option<Request> {
        if q.is_empty() {
            return None;
        }
        let slot = self.slots[i].lock().expect("slot lock");
        let mut best: Option<(usize, usize)> = None; // (cost, index)
        for (idx, req) in q.iter().enumerate() {
            let cost = self.request_cost(&slot, req);
            let better = match best {
                None => true,
                Some((c, _)) => cost < c,
            };
            if better {
                best = Some((cost, idx));
                if cost == 0 {
                    break; // can't beat an already-resident variant
                }
            }
        }
        best.and_then(|(_, idx)| q.remove(idx))
    }

    /// Frames board `slot` would have to rewrite to serve `req`.
    fn request_cost(&self, slot: &BoardSlot, req: &Request) -> usize {
        let Some(cat) = self.library.regions().get(req.region) else {
            return 0; // malformed; serve() will reject it cheaply
        };
        match self.cfg.mode {
            ServeMode::Partial => match slot.resident.get(req.region) {
                Some(Resident::Variant(v)) if *v == req.variant => 0,
                _ => cat.verify_frames(),
            },
            // A full swap rewrites every frame unless the whole device
            // already matches (this variant resident, all else base).
            ServeMode::FullSwap => {
                let exact = slot.resident.iter().enumerate().all(|(r, res)| {
                    if r == req.region {
                        *res == Resident::Variant(req.variant)
                    } else {
                        *res == Resident::Base
                    }
                });
                if exact {
                    0
                } else {
                    self.library
                        .regions()
                        .iter()
                        .map(|c| c.verify_frames())
                        .sum()
                }
            }
        }
    }

    /// Serve one request on board `i` end to end.
    fn serve(&self, i: usize, req: Request) -> Response {
        let mut resp = Response {
            id: req.id,
            board: i,
            region: req.region,
            variant: req.variant,
            outputs: Vec::new(),
            attempts: 0,
            store_hit: false,
            resident_hit: false,
            bytes: 0,
            port_time: Duration::ZERO,
            error: None,
        };
        let (stored, hit) = self.library.resolve(req.region, req.variant);
        if hit {
            self.metrics.store_hits.inc();
        } else {
            self.metrics.store_misses.inc();
        }
        resp.store_hit = hit;
        let stored = match stored {
            Ok(s) => s,
            Err(e) => return self.fail(resp, e.to_string()),
        };

        let mut slot = self.slots[i].lock().expect("slot lock");
        let outcome = self.reconfigure(&mut slot, &req, &stored, &mut resp);
        if let Err(e) = outcome {
            slot.busy += resp.port_time;
            drop(slot);
            return self.fail(resp, e.to_string());
        }

        // The region now verifiably runs the variant: drive, clock, read.
        let cat = &self.library.regions()[req.region];
        for (name, v) in &req.drive {
            if let Some(io) = cat.pad(name) {
                slot.board.set_pad(io, *v);
            }
        }
        if req.reset {
            slot.board.reset();
        }
        slot.board.clock_step(req.clocks);
        resp.outputs = cat
            .pads
            .iter()
            .map(|(n, io)| (n.clone(), slot.board.get_pad(*io)))
            .collect();
        slot.busy += resp.port_time;
        drop(slot);

        self.metrics.requests_served.inc();
        self.metrics.request_latency.record(resp.port_time);
        resp
    }

    /// Bring `req`'s variant up on the board, verified: fast-path when
    /// resident, otherwise download + readback compare with retry.
    fn reconfigure(
        &self,
        slot: &mut BoardSlot,
        req: &Request,
        stored: &StoredPartial,
        resp: &mut Response,
    ) -> Result<(), FleetError> {
        let resident_exact = match self.cfg.mode {
            ServeMode::Partial => slot.resident[req.region] == Resident::Variant(req.variant),
            ServeMode::FullSwap => slot.resident.iter().enumerate().all(|(r, res)| {
                if r == req.region {
                    *res == Resident::Variant(req.variant)
                } else {
                    *res == Resident::Base
                }
            }),
        };
        if resident_exact {
            // Residency is only ever recorded after a verified download,
            // and failures demote to `Unknown` — so a resident variant
            // needs no port traffic at all, matching the scheduler's
            // zero-frame cost for this request.
            self.metrics.resident_hits.inc();
            resp.resident_hit = true;
            return Ok(());
        }

        let mut last_error = String::new();
        while resp.attempts < self.cfg.max_attempts {
            let stream: &Bitstream = match self.cfg.mode {
                ServeMode::FullSwap => &stored.full,
                // First attempt from a pristine base region can use the
                // small incremental flavor; anything else needs the
                // wholesale partial, which overwrites any resident.
                ServeMode::Partial => {
                    if resp.attempts == 0 && slot.resident[req.region] == Resident::Base {
                        &stored.incremental
                    } else {
                        &stored.wholesale
                    }
                }
            };
            if resp.attempts > 0 {
                // Exponential backoff: the port sits idle, simulated.
                let pause = self.cfg.backoff * 2u32.pow((resp.attempts - 1).min(10));
                resp.port_time += pause;
            }
            resp.attempts += 1;
            self.metrics.downloads.inc();
            self.metrics.download_bytes.add(stream.byte_len() as u64);
            resp.bytes += stream.byte_len() as u64;
            let dl = download_time(stream.byte_len());
            resp.port_time += dl;
            self.metrics.download_latency.record(dl);

            // Any write leaves the region (or, for a full swap, the
            // whole board) in an unknown state until verified.
            match self.cfg.mode {
                ServeMode::Partial => slot.resident[req.region] = Resident::Unknown,
                ServeMode::FullSwap => slot.resident.fill(Resident::Unknown),
            }
            match slot.board.set_configuration(stream) {
                Err(e) => {
                    self.metrics.retries.inc();
                    last_error = e.to_string();
                    continue;
                }
                Ok(()) => {
                    if self.verify(slot, req.region, stored, resp) {
                        slot.resident[req.region] = Resident::Variant(req.variant);
                        if self.cfg.mode == ServeMode::FullSwap {
                            for (r, res) in slot.resident.iter_mut().enumerate() {
                                if r != req.region {
                                    *res = Resident::Base;
                                }
                            }
                        }
                        return Ok(());
                    }
                    self.metrics.retries.inc();
                    last_error = "readback verification mismatch".into();
                    continue;
                }
            }
        }
        Err(FleetError::Exhausted {
            attempts: resp.attempts,
            last: last_error,
        })
    }

    /// Region-scoped readback compare against the stored expectation.
    /// Costs simulated port time proportional to the region, not the
    /// device — the point of `Xhwif::get_configuration_region`.
    fn verify(
        &self,
        slot: &mut BoardSlot,
        region: usize,
        stored: &StoredPartial,
        resp: &mut Response,
    ) -> bool {
        let cat = &self.library.regions()[region];
        let fw = virtex::ConfigGeometry::for_device(self.library.device()).frame_words();
        // Split the borrow: the readback scratch lives next to the board
        // it is filled from, recycled across every verify on this slot.
        let BoardSlot {
            board, readback, ..
        } = slot;
        readback.clear();
        let mut reply_words = 0usize;
        for r in &cat.verify_ranges {
            match board.get_configuration_region_into(*r, readback) {
                // The physical reply carries one pad frame per read.
                Ok(()) => reply_words += (r.len + 1) * fw,
                Err(_) => return false,
            }
        }
        let rb = download_time(reply_words * 4);
        resp.port_time += rb;
        self.metrics.verify_latency.record(rb);
        self.metrics.readback_bytes.add(reply_words as u64 * 4);
        let ok = *readback == stored.expected;
        if !ok {
            self.metrics.verify_failures.inc();
        }
        ok
    }

    fn fail(&self, mut resp: Response, error: String) -> Response {
        self.metrics.requests_failed.inc();
        self.metrics.request_latency.record(resp.port_time);
        resp.error = Some(error);
        resp
    }
}

/// Summary of one [`Fleet::run`].
#[derive(Debug)]
pub struct FleetReport {
    /// Per-request outcomes, sorted by request id.
    pub responses: Vec<Response>,
    /// Longest per-board simulated port busy time for this run — the
    /// run's simulated wall-clock under the SelectMAP timing model.
    pub makespan: Duration,
    /// Requests served successfully.
    pub served: u64,
    /// Requests that exhausted their retries.
    pub failed: u64,
}

impl FleetReport {
    /// Served requests per second of simulated port time.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan.is_zero() {
            return f64::INFINITY;
        }
        self.served as f64 / self.makespan.as_secs_f64()
    }
}
