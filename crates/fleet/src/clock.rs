//! Discrete-event virtual clock for the fleet scheduler.
//!
//! SelectMAP time is simulated anyway ([`simboard::port`] computes it
//! from byte counts, it never sleeps), so the serving layer does not
//! need wall time at all: boards advance by *virtual nanoseconds* and a
//! min-heap of timestamped events replaces the thread-per-board model.
//! Ten thousand boards and millions of requests then run in seconds of
//! wall clock — and, because event order is a pure function of the
//! trace, every schedule is deterministic and replayable from a seed.
//!
//! Ordering ties are broken by a per-queue insertion sequence number,
//! never by payload comparison, so event kinds need no `Ord` bound and
//! two events at the same instant always replay in the order they were
//! scheduled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vt(u64);

impl Vt {
    /// The simulation epoch.
    pub const ZERO: Vt = Vt(0);

    /// A timestamp `ns` nanoseconds after the epoch.
    pub const fn from_ns(ns: u64) -> Vt {
        Vt(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn ns(self) -> u64 {
        self.0
    }

    /// This instant as a [`Duration`] since the epoch.
    pub const fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// The instant `d` later (saturating).
    pub fn after(self, d: Duration) -> Vt {
        Vt(self.0.saturating_add(d.as_nanos() as u64))
    }

    /// The instant `ns` nanoseconds later (saturating).
    pub const fn after_ns(self, ns: u64) -> Vt {
        Vt(self.0.saturating_add(ns))
    }
}

/// A scheduled event: a payload due at a virtual instant.
#[derive(Debug, Clone)]
pub struct Event<K> {
    /// When the event fires.
    pub at: Vt,
    /// Insertion order within the owning queue; the deterministic
    /// tie-break for simultaneous events.
    pub seq: u64,
    /// The payload.
    pub kind: K,
}

// Ordering is on (at, seq) only — reversed, because BinaryHeap is a
// max-heap and we want the earliest event on top.
impl<K> PartialEq for Event<K> {
    fn eq(&self, other: &Event<K>) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<K> Eq for Event<K> {}
impl<K> PartialOrd for Event<K> {
    fn partial_cmp(&self, other: &Event<K>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for Event<K> {
    fn cmp(&self, other: &Event<K>) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-ordered queue of timestamped events.
///
/// Each shard of the scheduler owns one; `seq` is assigned at push so
/// same-instant events pop in scheduling order regardless of heap
/// internals.
#[derive(Debug)]
pub struct EventQueue<K> {
    heap: BinaryHeap<Event<K>>,
    next_seq: u64,
}

impl<K> Default for EventQueue<K> {
    fn default() -> EventQueue<K> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<K> EventQueue<K> {
    /// An empty queue.
    pub fn new() -> EventQueue<K> {
        EventQueue::default()
    }

    /// Schedule `kind` at `at`.
    pub fn push(&mut self, at: Vt, kind: K) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// The instant of the earliest pending event.
    pub fn peek_at(&self) -> Option<Vt> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event if it fires strictly before `limit`.
    ///
    /// The strict bound is what makes windowed parallel execution
    /// deterministic: every shard processes exactly the events in
    /// `[now, limit)` no matter which worker runs it.
    pub fn pop_if_before(&mut self, limit: Vt) -> Option<Event<K>> {
        if self.heap.peek().is_some_and(|e| e.at < limit) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Pop the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<Event<K>> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vt_arithmetic() {
        let t = Vt::from_ns(100);
        assert_eq!(t.ns(), 100);
        assert_eq!(t.after(Duration::from_nanos(20)).ns(), 120);
        assert_eq!(t.after_ns(u64::MAX).ns(), u64::MAX);
        assert_eq!(Vt::ZERO.as_duration(), Duration::ZERO);
        assert!(Vt::from_ns(1) > Vt::ZERO);
    }

    #[test]
    fn events_pop_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(Vt::from_ns(30), "c");
        q.push(Vt::from_ns(10), "a1");
        q.push(Vt::from_ns(10), "a2");
        q.push(Vt::from_ns(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.kind)).collect();
        assert_eq!(order, ["a1", "a2", "b", "c"]);
    }

    #[test]
    fn pop_if_before_is_strict() {
        let mut q = EventQueue::new();
        q.push(Vt::from_ns(10), 1u32);
        q.push(Vt::from_ns(20), 2u32);
        assert_eq!(q.peek_at(), Some(Vt::from_ns(10)));
        assert!(q.pop_if_before(Vt::from_ns(10)).is_none());
        let e = q.pop_if_before(Vt::from_ns(11)).expect("10 < 11");
        assert_eq!((e.at, e.kind), (Vt::from_ns(10), 1));
        assert!(q.pop_if_before(Vt::from_ns(20)).is_none());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().kind, 2);
        assert!(q.is_empty());
    }
}
