//! Synthetic request-trace generation for fleet-scale simulation.
//!
//! The on-demand co-processor workload (many users demanding many
//! variants against a bounded device pool) has two defining features
//! the scheduler must survive: *skew* — a few variants are vastly more
//! popular than the tail — and *burstiness* — arrivals cluster instead
//! of trickling in uniformly. [`TraceSpec`] models both: variant
//! popularity is Zipf-distributed over the `(region, variant)` key
//! space, and inter-arrival gaps are exponential with an on/off burst
//! phase that compresses gaps during bursts.
//!
//! Everything is drawn from one seeded [`StdRng`], so a spec is a
//! complete, replayable description of a workload.

use crate::sched::{Priority, SimRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Total number of requests to generate.
    pub requests: usize,
    /// Number of reconfigurable regions on each board.
    pub regions: u32,
    /// Number of variants per region.
    pub variants: u32,
    /// Zipf skew exponent over the `(region, variant)` key space;
    /// `0.0` is uniform, `1.1` matches the benchmark sweep.
    pub zipf_s: f64,
    /// Mean inter-arrival gap outside bursts, virtual nanoseconds.
    pub mean_gap_ns: u64,
    /// Burstiness: during a burst phase gaps shrink by this factor
    /// (`1` disables bursts).
    pub burst: u64,
    /// Fraction of requests tagged [`Priority::High`].
    pub high_fraction: f64,
    /// Fraction of requests tagged [`Priority::Low`].
    pub low_fraction: f64,
    /// RNG seed; the whole trace is a pure function of the spec.
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> TraceSpec {
        TraceSpec {
            requests: 1024,
            regions: 4,
            variants: 8,
            zipf_s: 1.1,
            mean_gap_ns: 2_000,
            burst: 8,
            high_fraction: 0.05,
            low_fraction: 0.10,
            seed: 0xF1EE7,
        }
    }
}

impl TraceSpec {
    /// Generate the trace: requests sorted by arrival time, ids equal
    /// to their index.
    pub fn generate(&self) -> Vec<SimRequest> {
        assert!(self.regions > 0 && self.variants > 0, "empty key space");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let keys = (self.regions as usize) * (self.variants as usize);

        // Zipf CDF over ranks, then a shuffled rank → key permutation so
        // the popular keys are not always the low-numbered ones.
        let mut cdf = Vec::with_capacity(keys);
        let mut acc = 0.0f64;
        for rank in 1..=keys {
            acc += 1.0 / (rank as f64).powf(self.zipf_s);
            cdf.push(acc);
        }
        let total = acc;
        let mut perm: Vec<u32> = (0..keys as u32).collect();
        // Fisher–Yates off the same stream.
        for i in (1..keys).rev() {
            let j = rng.gen_range(0..(i + 1) as u64) as usize;
            perm.swap(i, j);
        }

        let mut out = Vec::with_capacity(self.requests);
        let mut at = 0u64;
        // Burst phase machine: alternate quiet and burst spans whose
        // lengths are themselves drawn from the stream.
        let mut in_burst = false;
        let mut phase_left: u64 = 0;
        for id in 0..self.requests as u64 {
            if phase_left == 0 && self.burst > 1 {
                in_burst = !in_burst;
                phase_left = if in_burst {
                    rng.gen_range(8..64u64)
                } else {
                    rng.gen_range(16..128u64)
                };
            }
            phase_left = phase_left.saturating_sub(1);

            // Exponential inter-arrival: -ln(u) * mean, compressed
            // inside a burst.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let mean = if in_burst {
                (self.mean_gap_ns / self.burst).max(1)
            } else {
                self.mean_gap_ns.max(1)
            };
            let gap = (-u.ln() * mean as f64).min(u64::MAX as f64 / 2.0) as u64;
            at = at.saturating_add(gap);

            // Zipf draw → rank → permuted key.
            let x = rng.gen_range(0.0..total);
            let rank = cdf.partition_point(|&c| c < x).min(keys - 1);
            let key = perm[rank];
            let region = key / self.variants;
            let variant = key % self.variants;

            let p: f64 = rng.gen_range(0.0..1.0);
            let priority = if p < self.high_fraction {
                Priority::High
            } else if p < self.high_fraction + self.low_fraction {
                Priority::Low
            } else {
                Priority::Normal
            };

            out.push(SimRequest {
                id,
                at: crate::clock::Vt::from_ns(at),
                region,
                variant,
                priority,
                payload: (id & 0xF) as u32,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_sorted() {
        let spec = TraceSpec {
            requests: 500,
            ..TraceSpec::default()
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.iter().enumerate().all(|(i, r)| r.id == i as u64));
        assert!(a
            .iter()
            .all(|r| r.region < spec.regions && r.variant < spec.variants));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceSpec::default().generate();
        let b = TraceSpec {
            seed: 99,
            ..TraceSpec::default()
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_skews_popularity() {
        let spec = TraceSpec {
            requests: 20_000,
            regions: 4,
            variants: 16,
            zipf_s: 1.1,
            ..TraceSpec::default()
        };
        let trace = spec.generate();
        let mut counts = vec![0usize; (spec.regions * spec.variants) as usize];
        for r in &trace {
            counts[(r.region * spec.variants + r.variant) as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // With s=1.1 over 64 keys the hottest key takes a large multiple
        // of the uniform share (20000/64 ≈ 312).
        assert!(counts[0] > 1_200, "hot key only got {} of 20000", counts[0]);
        // ... and the top 8 keys together dominate the bottom 32.
        let top: usize = counts[..8].iter().sum();
        let bottom: usize = counts[32..].iter().sum();
        assert!(top > 3 * bottom, "top={top} bottom={bottom}");
    }

    #[test]
    fn priorities_roughly_match_fractions() {
        let spec = TraceSpec {
            requests: 10_000,
            high_fraction: 0.2,
            low_fraction: 0.3,
            ..TraceSpec::default()
        };
        let trace = spec.generate();
        let high = trace
            .iter()
            .filter(|r| r.priority == Priority::High)
            .count();
        let low = trace.iter().filter(|r| r.priority == Priority::Low).count();
        assert!((1_000..3_000).contains(&high), "high={high}");
        assert!((2_000..4_000).contains(&low), "low={low}");
    }
}
