//! The content-addressed partial-bitstream store.
//!
//! A serving fleet downloads each library entry many times — once per
//! board it schedules it onto, times retries — but the bitstream itself
//! only needs to be *generated* once. The store maps
//! `(device, region, variant, base-epoch)` to the generated artifacts
//! and guarantees single generation per key even when several workers
//! race on a cold entry (per-key `OnceLock`).
//!
//! The base-epoch component makes rebasing cheap and safe: when the
//! fleet's base design changes, bumping the epoch invalidates every key
//! at once — stale entries are purged, and the next request for a
//! variant regenerates against the new base.

use bitstream::Bitstream;
use std::collections::HashMap;
use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};
use std::sync::{Mutex, OnceLock};
use virtex::Device;

/// Identity of one stored entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartialKey {
    /// Device the bitstreams target.
    pub device: Device,
    /// Region index in the serving library.
    pub region: usize,
    /// Variant index within the region's catalogue.
    pub variant: usize,
    /// Column origin (slot index) the partial is stitched for; `0` is
    /// the region's floorplanned home. A partial generated for one
    /// origin is byte-wrong at every other, so the origin is part of
    /// the entry's identity.
    pub origin: usize,
    /// Base-design epoch the entry was generated against.
    pub epoch: u64,
}

/// Everything the fleet needs to serve one `(region, variant)` pair,
/// generated once and shared by reference.
#[derive(Debug)]
pub struct StoredPartial {
    /// The entry's identity.
    pub key: PartialKey,
    /// Wholesale partial: covers the module's configuration columns
    /// completely, safe to apply over any resident variant.
    pub wholesale: Bitstream,
    /// Incremental partial: only frames differing from the base image —
    /// smaller, but only correct when the region holds base content.
    pub incremental: Bitstream,
    /// Complete bitstream of the stamped image (this variant in its
    /// region, base content elsewhere) — what a no-partial-reconfig
    /// fleet must download per swap.
    pub full: Bitstream,
    /// Expected configuration words over the region's verify ranges,
    /// the readback-compare reference.
    pub expected: Vec<u32>,
    /// Frames the wholesale partial writes.
    pub frames_wholesale: usize,
    /// Frames the incremental partial writes.
    pub frames_incremental: usize,
    /// Compressed wire container of the wholesale partial (no delta —
    /// wholesale streams must apply over any resident content).
    pub wire_wholesale: wire::Encoded,
    /// Compressed wire container of the incremental partial,
    /// delta-coded against the base epoch's frame content.
    pub wire_incremental: wire::Encoded,
}

type Slot = Arc<OnceLock<Result<Arc<StoredPartial>, String>>>;

/// The store proper: an epoch counter plus the keyed entry map.
#[derive(Debug, Default)]
pub struct PartialStore {
    epoch: AtomicU64,
    map: Mutex<HashMap<PartialKey, Slot>>,
}

impl PartialStore {
    /// An empty store at epoch 0.
    pub fn new() -> PartialStore {
        PartialStore::default()
    }

    /// The current base-design epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the epoch, purging every entry generated against earlier
    /// bases. Returns the new epoch.
    pub fn bump_epoch(&self) -> u64 {
        let new = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.map
            .lock()
            .expect("store lock")
            .retain(|k, _| k.epoch >= new);
        new
    }

    /// Drop every entry for `region` — all variants, origins and
    /// epochs. Called when the defragmenter changes the region's slot
    /// assignment: a partial stitched for the old origin must never be
    /// served again. Returns the number of entries purged.
    pub fn purge_region(&self, region: usize) -> usize {
        let mut map = self.map.lock().expect("store lock");
        let before = map.len();
        map.retain(|k, _| k.region != region);
        before - map.len()
    }

    /// Number of resident entries (any epoch, generated or in flight).
    pub fn len(&self) -> usize {
        self.map.lock().expect("store lock").len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolve `key` (whose epoch must be [`Self::epoch`]), generating
    /// via `generate` exactly once per key. The `bool` is `true` on a
    /// hit (entry already existed — possibly generated concurrently by a
    /// racing worker this instant; the *caller that ran `generate`* is
    /// the single miss).
    pub fn get_or_generate(
        &self,
        key: PartialKey,
        generate: impl FnOnce() -> Result<StoredPartial, String>,
    ) -> (Result<Arc<StoredPartial>, String>, bool) {
        let slot: Slot = {
            let mut map = self.map.lock().expect("store lock");
            map.entry(key).or_default().clone()
        };
        // Outside the map lock: generation is expensive and other keys
        // must not wait on it. OnceLock serializes racers on *this* key.
        let mut generated = false;
        let result = slot
            .get_or_init(|| {
                generated = true;
                generate().map(Arc::new)
            })
            .clone();
        (result, !generated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn dummy(key: PartialKey) -> StoredPartial {
        let enc = |words: Vec<u32>| wire::encode(key.device, &Bitstream::from_words(words), None);
        StoredPartial {
            key,
            wholesale: Bitstream::from_words(vec![1]),
            incremental: Bitstream::from_words(vec![2]),
            full: Bitstream::from_words(vec![3]),
            expected: vec![],
            frames_wholesale: 1,
            frames_incremental: 1,
            wire_wholesale: enc(vec![1]),
            wire_incremental: enc(vec![2]),
        }
    }

    fn key(region: usize, epoch: u64) -> PartialKey {
        PartialKey {
            device: Device::XCV50,
            region,
            variant: 0,
            origin: 0,
            epoch,
        }
    }

    #[test]
    fn generates_once_per_key() {
        let store = PartialStore::new();
        let calls = AtomicUsize::new(0);
        let gen = |k: PartialKey| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(dummy(k))
        };
        let (a, hit_a) = store.get_or_generate(key(0, 0), || gen(key(0, 0)));
        let (b, hit_b) = store.get_or_generate(key(0, 0), || gen(key(0, 0)));
        assert!(!hit_a && hit_b);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()), "same entry shared");

        let (_, hit_c) = store.get_or_generate(key(1, 0), || gen(key(1, 0)));
        assert!(!hit_c);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn concurrent_cold_lookups_generate_once() {
        let store = PartialStore::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (r, _) = store.get_or_generate(key(0, 0), || {
                        calls.fetch_add(1, Ordering::Relaxed);
                        Ok(dummy(key(0, 0)))
                    });
                    assert!(r.is_ok());
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn epoch_bump_purges_stale_entries() {
        let store = PartialStore::new();
        store
            .get_or_generate(key(0, 0), || Ok(dummy(key(0, 0))))
            .0
            .unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.bump_epoch(), 1);
        assert!(store.is_empty(), "old-epoch entries purged");
        // The same (region, variant) under the new epoch is a fresh miss.
        let (_, hit) = store.get_or_generate(key(0, 1), || Ok(dummy(key(0, 1))));
        assert!(!hit);
    }

    #[test]
    fn migration_purges_stale_origin_partials() {
        let store = PartialStore::new();
        let at = |origin: usize| PartialKey {
            origin,
            ..key(0, 0)
        };
        // Region 0 was served at origin 3 before the defragmenter moved
        // it; region 1 is a bystander that must survive the purge.
        store.get_or_generate(at(3), || Ok(dummy(at(3)))).0.unwrap();
        store
            .get_or_generate(key(1, 0), || Ok(dummy(key(1, 0))))
            .0
            .unwrap();
        assert_eq!(store.purge_region(0), 1, "only region-0 entries go");
        assert_eq!(store.len(), 1);
        // After the move to origin 1 every origin is a fresh miss: the
        // stale origin-3 partial can never be served again.
        let (_, hit) = store.get_or_generate(at(1), || Ok(dummy(at(1))));
        assert!(!hit, "new origin regenerates");
        let (_, hit) = store.get_or_generate(at(3), || Ok(dummy(at(3))));
        assert!(
            !hit,
            "stale-origin partial must not be served post-migration"
        );
    }

    #[test]
    fn generation_errors_are_shared_not_retried() {
        let store = PartialStore::new();
        let calls = AtomicUsize::new(0);
        let (r1, _) = store.get_or_generate(key(0, 0), || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err("boom".into())
        });
        let (r2, hit) = store.get_or_generate(key(0, 0), || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err("boom".into())
        });
        assert!(r1.is_err() && r2.is_err() && hit);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}
