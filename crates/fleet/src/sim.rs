//! Model-backed fleet simulation: the 10k-board, million-request scale
//! harness.
//!
//! The real backend (`service.rs`) drives actual `SimBoard` fabric —
//! cycle-accurate but far too heavy to instantiate ten thousand times.
//! [`ModelBackend`] keeps only what the *scheduler* observes: per-key
//! bitstream byte counts (priced through the same 50 MHz SelectMAP
//! byte-cycle model as real downloads, via
//! [`simboard::port::download_ns`]) and a per-board deterministic
//! [`FaultInjector`] reusing `simboard`'s exact fault fates. Store
//! behaviour is modelled by a prepass over the trace: the first request
//! to touch each `(region, variant)` pays the store miss, everyone
//! after hits — which makes per-request `store_hit` flags deterministic
//! (the real store's once-lock race is winner-takes-miss and therefore
//! timing-dependent; a model must not be).
//!
//! [`simulate`] is the single entry point used by the determinism test
//! suite, the property tests, `jpg-cli fleet-sim` and the
//! `fleet_scale_smoke` benchmark.

use crate::clock::Vt;
use crate::metrics::FleetMetrics;
use crate::sched::{
    self, Backend, DefragConfig, DownloadResult, DownloadStatus, Flavor, Outcome, Resident,
    Resolved, SchedConfig, ServeMode, SimRequest,
};
use crate::service::WireFormat;
use crate::trace::TraceSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simboard::port::download_ns;
use simboard::{FaultInjector, FaultKind};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Parameters of one model-backed simulation.
#[derive(Debug, Clone)]
pub struct FleetSimSpec {
    /// Simulated boards.
    pub boards: usize,
    /// Shards (0 = `boards.min(64)`). Shard count fixes the schedule.
    pub shards: usize,
    /// Worker threads (0 = available parallelism). Wall time only.
    pub workers: usize,
    /// Synthetic requests to generate.
    pub requests: usize,
    /// Regions per board.
    pub regions: u32,
    /// Variants per region.
    pub variants: u32,
    /// Zipf skew of variant popularity (0 = uniform).
    pub zipf_s: f64,
    /// Mean inter-arrival gap, virtual ns (0 = auto-size to ~80% fleet
    /// utilization from the modelled service cost).
    pub mean_gap_ns: u64,
    /// Burst factor for the arrival process (1 = no bursts).
    pub burst: u64,
    /// Fraction of requests tagged high priority.
    pub high_fraction: f64,
    /// Fraction of requests tagged low priority.
    pub low_fraction: f64,
    /// Per-download fault probability on every board.
    pub fault_rate: f64,
    /// Download flavor.
    pub mode: ServeMode,
    /// Wire encoding for partial downloads: under
    /// [`WireFormat::Compressed`] the per-key partial byte counts are
    /// scaled by seeded compression ratios calibrated against the real
    /// `wire` encoder on the Figure-4 library (full bitstreams and
    /// readback replies stay plain, as in the real backend).
    pub wire: WireFormat,
    /// Retry budget per request.
    pub max_attempts: u32,
    /// Per-shard admission queue bound.
    pub queue_cap: usize,
    /// Per-shard backlog at which low-priority arrivals shed.
    pub shed_watermark: usize,
    /// Same-key request coalescing.
    pub coalesce: bool,
    /// Record the per-event log (golden fixtures; heavy at scale).
    pub log_events: bool,
    /// Enable the online defragmenter: every board starts with a
    /// deliberately scattered slot layout (region `i` parked at slot
    /// `2i + 1`, a hole under every region) and compacts it during idle
    /// windows via modelled relocation downloads.
    pub defrag: bool,
    /// Column slots per board (0 or anything below `2 * regions` widens
    /// to `2 * regions`, the scattered layout's footprint).
    pub slots: usize,
    /// Idle dwell before a fragmented board migrates, virtual ns
    /// (0 = 50 µs).
    pub defrag_idle_ns: u64,
    /// Master seed: trace, artifact sizes and fault fates all derive
    /// from it.
    pub seed: u64,
}

impl Default for FleetSimSpec {
    fn default() -> FleetSimSpec {
        FleetSimSpec {
            boards: 64,
            shards: 0,
            workers: 0,
            requests: 10_000,
            regions: 4,
            variants: 8,
            zipf_s: 1.1,
            mean_gap_ns: 0,
            burst: 8,
            high_fraction: 0.05,
            low_fraction: 0.10,
            fault_rate: 0.0,
            mode: ServeMode::Partial,
            wire: WireFormat::Plain,
            max_attempts: 16,
            queue_cap: usize::MAX,
            shed_watermark: usize::MAX,
            coalesce: true,
            log_events: false,
            defrag: false,
            slots: 0,
            defrag_idle_ns: 0,
            seed: 0xF1EE7,
        }
    }
}

/// Modelled per-key artifact sizes, deterministic in the spec seed.
///
/// The numbers are shaped like the real XCV300 serving library from
/// E10: incremental partials of a few KB, wholesale partials a small
/// multiple of that, complete bitstreams in the hundreds of KB, and a
/// region readback reply slightly larger than the wholesale partial
/// (one pad frame per read).
fn model_sizes(spec: &FleetSimSpec) -> HashMap<(u32, u32), Resolved> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xA57F_AC75);
    // Wire-compression ratios come from their own stream so switching
    // formats never perturbs the base (plain) sizes of later keys.
    let mut wire_rng = StdRng::seed_from_u64(spec.seed ^ 0x31BE_C0DE);
    let mut sizes = HashMap::new();
    for region in 0..spec.regions {
        for variant in 0..spec.variants {
            let mut incremental = 4_096 + rng.gen_range(0..8_192u64);
            let mut wholesale = incremental * 2 + rng.gen_range(0..4_096u64);
            let full = 220_000 + rng.gen_range(0..20_000u64);
            let generation = rng.gen_range(1..u64::MAX);
            // The readback reply is never compressed: size the verify
            // traffic from the plain wholesale footprint before any
            // wire scaling.
            let verify = wholesale + wholesale / 4;
            if spec.wire == WireFormat::Compressed {
                // Per-key compression ratios (percent), calibrated from
                // the real wire encoder on the Figure-4 library (see
                // conformance `wire_smoke` / BENCH_wire_format.json):
                // incrementals ship only dense dirty frames and compress
                // 2.7-3.5x, while wholesales cover whole mostly-zero
                // regions that RLE crushes 17-49x.
                let r_inc = 270 + wire_rng.gen_range(0..80u64);
                let r_who = 1_700 + wire_rng.gen_range(0..3_200u64);
                incremental = (incremental * 100 / r_inc).max(1);
                wholesale = (wholesale * 100 / r_who).max(1);
            }
            sizes.insert(
                (region, variant),
                Resolved {
                    store_hit: true, // patched per request via miss set
                    generation,
                    bytes_incremental: incremental,
                    bytes_wholesale: wholesale,
                    bytes_full: full,
                    bytes_verify: verify,
                },
            );
        }
    }
    sizes
}

/// One modelled board: fault fates only.
pub struct ModelBoard {
    fault: Option<FaultInjector>,
}

/// The scale-harness backend: byte-count costs, no fabric.
pub struct ModelBackend {
    regions: u32,
    variants: u32,
    sizes: HashMap<(u32, u32), Resolved>,
    miss_ids: HashSet<u64>,
}

impl ModelBackend {
    /// A backend for `spec`, with store misses assigned to the first
    /// request of each key in `trace` order.
    pub fn new(spec: &FleetSimSpec, trace: &[SimRequest]) -> ModelBackend {
        let mut seen = HashSet::new();
        let mut miss_ids = HashSet::new();
        for r in trace {
            if seen.insert((r.region, r.variant)) {
                miss_ids.insert(r.id);
            }
        }
        ModelBackend {
            regions: spec.regions,
            variants: spec.variants,
            sizes: model_sizes(spec),
            miss_ids,
        }
    }

    /// Fresh board states for `spec`, fault injectors seeded per board
    /// with the same per-index derivation the real fleet uses.
    pub fn boards(spec: &FleetSimSpec) -> Vec<ModelBoard> {
        (0..spec.boards)
            .map(|i| ModelBoard {
                fault: (spec.fault_rate > 0.0).then(|| {
                    FaultInjector::new(
                        spec.fault_rate,
                        spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64),
                    )
                }),
            })
            .collect()
    }
}

impl Backend for ModelBackend {
    type Artifact = ();
    type Board = ModelBoard;

    fn resolve(&self, req: &SimRequest) -> Result<((), Resolved), String> {
        if req.region >= self.regions {
            return Err(format!("bad request: region {} out of range", req.region));
        }
        if req.variant >= self.variants {
            return Err(format!(
                "bad request: variant {} out of range for region {}",
                req.variant, req.region
            ));
        }
        let mut res = self.sizes[&(req.region, req.variant)];
        res.store_hit = !self.miss_ids.contains(&req.id);
        Ok(((), res))
    }

    fn download(
        &self,
        board: &mut ModelBoard,
        _global: u32,
        _art: &(),
        flavor: Flavor,
        res: &Resolved,
    ) -> DownloadResult {
        let bytes = match flavor {
            Flavor::Incremental => res.bytes_incremental,
            Flavor::Wholesale => res.bytes_wholesale,
            Flavor::Full => res.bytes_full,
        };
        let dl = download_ns(bytes as usize);
        let draw = match &mut board.fault {
            Some(f) => f.draw(),
            None => FaultKind::Clean,
        };
        match draw {
            FaultKind::Drop => DownloadResult {
                status: DownloadStatus::PortFault("transfer fault (dropped frames)".into()),
                bytes,
                download_ns: dl,
                verify_ns: 0,
                readback_bytes: 0,
            },
            kind => DownloadResult {
                status: if kind == FaultKind::Corrupt {
                    DownloadStatus::VerifyMismatch
                } else {
                    DownloadStatus::Verified
                },
                bytes,
                download_ns: dl,
                verify_ns: download_ns(res.bytes_verify as usize),
                readback_bytes: res.bytes_verify,
            },
        }
    }

    fn finish(&self, _board: &mut ModelBoard, _region: u32, _payload: u32) -> Vec<(String, bool)> {
        Vec::new()
    }

    fn migrate(
        &self,
        board: &mut ModelBoard,
        global: u32,
        region: u32,
        resident: Resident,
    ) -> Option<DownloadResult> {
        // Relocating a region's content is priced as a wholesale
        // download at the new origin plus the usual verification
        // readback, drawing fault fates from the same per-board
        // injector as request downloads. Base/unknown content is priced
        // at the region's variant-0 footprint.
        let variant = match resident {
            Resident::Variant(v) => v,
            Resident::Base | Resident::Unknown => 0,
        };
        let res = self.sizes[&(region, variant)];
        Some(self.download(board, global, &(), Flavor::Wholesale, &res))
    }
}

/// Everything a simulation run reports.
#[derive(Debug)]
pub struct SimReport {
    /// Per-request outcomes, sorted by id.
    pub outcomes: Vec<Outcome>,
    /// Requests served (residents and coalesced riders included).
    pub served: u64,
    /// Requests that exhausted retries or failed resolution.
    pub failed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Low-priority requests dropped past the shed watermark.
    pub shed: u64,
    /// Requests that rode another's in-flight download.
    pub coalesced: u64,
    /// Requests served with zero port traffic.
    pub resident_hits: u64,
    /// Download attempts issued.
    pub downloads: u64,
    /// Configuration bytes pushed.
    pub download_bytes: u64,
    /// Readback reply bytes pulled for verification.
    pub readback_bytes: u64,
    /// Failed download attempts that were retried.
    pub retries: u64,
    /// Readback compares that mismatched.
    pub verify_failures: u64,
    /// Requests migrated between shards at rebalance barriers.
    pub stolen: u64,
    /// Slot migrations the defragmenter completed.
    pub migrations: u64,
    /// Migration attempts that faulted and were retried or abandoned.
    pub migration_retries: u64,
    /// Summed per-board slot fragmentation before the run.
    pub frag_initial: u64,
    /// Summed per-board slot fragmentation after the run.
    pub frag_final: u64,
    /// Virtual completion instant of the whole trace.
    pub completed: Vt,
    /// Largest per-board simulated port busy time, nanoseconds.
    pub makespan_ns: u64,
    /// Arrival-to-completion latency quantiles (virtual time).
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// 99.9th percentile.
    pub p999: Duration,
    /// Served requests per second of virtual completion time.
    pub throughput_rps: f64,
    /// Wall-clock the simulation took.
    pub wall: Duration,
    /// Merged event log (empty unless `log_events`).
    pub event_log: Vec<String>,
    /// Final residency per board per region.
    pub resident: Vec<Vec<Resident>>,
    /// Full metric snapshot (deterministic for a fixed seed + spec,
    /// independent of worker count).
    pub snapshot: obs::Snapshot,
}

impl FleetSimSpec {
    /// The scheduler configuration this spec induces.
    pub fn sched_config(&self) -> SchedConfig {
        SchedConfig {
            mode: self.mode,
            max_attempts: self.max_attempts,
            backoff: Duration::from_micros(20),
            shards: if self.shards == 0 {
                self.boards.min(64)
            } else {
                self.shards
            },
            workers: self.workers,
            window: Duration::from_micros(20),
            queue_cap: self.queue_cap,
            shed_watermark: self.shed_watermark,
            coalesce: self.coalesce,
            log_events: self.log_events,
            defrag: self.defrag.then(|| {
                let slots = self.slots.max(2 * self.regions as usize);
                DefragConfig {
                    slots,
                    // Region i at slot 2i+1: a hole below every region,
                    // maximal fragmentation for the footprint.
                    layout: (0..self.regions as usize).map(|r| 2 * r + 1).collect(),
                    idle: Duration::from_nanos(if self.defrag_idle_ns == 0 {
                        50_000
                    } else {
                        self.defrag_idle_ns
                    }),
                    max_attempts: self.max_attempts,
                }
            }),
        }
    }

    /// The synthetic trace this spec induces. With `mean_gap_ns == 0`
    /// the gap is sized so offered load is ~80% of the fleet's modelled
    /// service capacity (wholesale download + verify per request).
    pub fn trace_spec(&self) -> TraceSpec {
        let mean_gap_ns = if self.mean_gap_ns == 0 {
            let sizes = model_sizes(self);
            let mean_service: u64 = sizes
                .values()
                .map(|r| {
                    let bytes = match self.mode {
                        ServeMode::Partial => r.bytes_wholesale,
                        ServeMode::FullSwap => r.bytes_full,
                    };
                    download_ns((bytes + r.bytes_verify) as usize)
                })
                .sum::<u64>()
                / sizes.len().max(1) as u64;
            ((mean_service as f64) / (self.boards as f64 * 0.8)).max(1.0) as u64
        } else {
            self.mean_gap_ns
        };
        TraceSpec {
            requests: self.requests,
            regions: self.regions,
            variants: self.variants,
            zipf_s: self.zipf_s,
            mean_gap_ns,
            burst: self.burst,
            high_fraction: self.high_fraction,
            low_fraction: self.low_fraction,
            seed: self.seed,
        }
    }
}

/// Run a model-backed simulation of `spec`'s synthetic trace.
pub fn simulate(spec: &FleetSimSpec) -> SimReport {
    simulate_trace(spec, spec.trace_spec().generate())
}

/// Run a model-backed simulation of an explicit trace (the determinism
/// suite replays one trace at several worker counts).
pub fn simulate_trace(spec: &FleetSimSpec, trace: Vec<SimRequest>) -> SimReport {
    let t0 = std::time::Instant::now();
    let backend = ModelBackend::new(spec, &trace);
    let states = ModelBackend::boards(spec);
    let resident = vec![vec![Resident::Base; spec.regions as usize]; spec.boards];
    let metrics = FleetMetrics::new();
    let cfg = spec.sched_config();
    let out = sched::run(&backend, &metrics, &cfg, trace, states, resident);
    let quantiles = metrics.e2e_latency.quantiles(&[0.50, 0.99, 0.999]);
    let served = metrics.requests_served.get();
    let completed_s = out.completed.as_duration().as_secs_f64();
    SimReport {
        served,
        failed: metrics.requests_failed.get(),
        rejected: metrics.rejected.get(),
        shed: metrics.shed.get(),
        coalesced: metrics.coalesced.get(),
        resident_hits: metrics.resident_hits.get(),
        downloads: metrics.downloads.get(),
        download_bytes: metrics.download_bytes.get(),
        readback_bytes: metrics.readback_bytes.get(),
        retries: metrics.retries.get(),
        verify_failures: metrics.verify_failures.get(),
        stolen: out.stolen,
        migrations: out.migrations,
        migration_retries: out.migration_retries,
        frag_initial: out.frag_initial,
        frag_final: out.frag_final,
        completed: out.completed,
        makespan_ns: out.busy_ns.iter().copied().max().unwrap_or(0),
        p50: quantiles[0],
        p99: quantiles[1],
        p999: quantiles[2],
        throughput_rps: if completed_s > 0.0 {
            served as f64 / completed_s
        } else {
            f64::INFINITY
        },
        wall: t0.elapsed(),
        event_log: out.event_log,
        resident: out.resident,
        snapshot: metrics.registry().snapshot(),
        outcomes: out.outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sizes_are_deterministic_and_shaped() {
        let spec = FleetSimSpec::default();
        let a = model_sizes(&spec);
        let b = model_sizes(&spec);
        assert_eq!(a.len(), (spec.regions * spec.variants) as usize);
        for (k, r) in &a {
            assert_eq!(b[k], *r);
            assert!(r.bytes_incremental < r.bytes_wholesale);
            assert!(r.bytes_wholesale < r.bytes_full / 4);
            assert!(r.bytes_verify >= r.bytes_wholesale);
        }
    }

    #[test]
    fn compressed_wire_scales_partials_but_not_verify_or_full() {
        let plain = FleetSimSpec::default();
        let compressed = FleetSimSpec {
            wire: WireFormat::Compressed,
            ..FleetSimSpec::default()
        };
        let a = model_sizes(&plain);
        let b = model_sizes(&compressed);
        for (k, p) in &a {
            let c = &b[k];
            // Partial traffic shrinks by at least the floor ratios
            // (wholesales are mostly-zero region frames and compress
            // far harder than the dense incremental deltas).
            assert!(c.bytes_incremental <= p.bytes_incremental * 100 / 270);
            assert!(c.bytes_wholesale <= p.bytes_wholesale * 100 / 1_700);
            assert!(c.bytes_wholesale < c.bytes_incremental);
            // Readback replies and full bitstreams never compress.
            assert_eq!(c.bytes_verify, p.bytes_verify);
            assert_eq!(c.bytes_full, p.bytes_full);
        }
    }

    #[test]
    fn miss_set_charges_first_toucher_only() {
        let spec = FleetSimSpec {
            requests: 500,
            ..FleetSimSpec::default()
        };
        let r = simulate(&spec);
        let misses = r.outcomes.iter().filter(|o| !o.store_hit).count();
        assert_eq!(
            misses as u64,
            r.snapshot
                .counter_total("fleet_store_misses_total")
                .unwrap(),
        );
        assert!(misses <= (spec.regions * spec.variants) as usize);
    }

    #[test]
    fn report_quantiles_come_from_the_e2e_histogram() {
        let spec = FleetSimSpec {
            requests: 2_000,
            ..FleetSimSpec::default()
        };
        let r = simulate(&spec);
        assert!(r.p50 <= r.p99 && r.p99 <= r.p999);
        assert!(r.p999 > Duration::ZERO);
        assert_eq!(
            r.snapshot.histogram_quantile("fleet_e2e_latency_us", 0.99),
            Some(r.p99)
        );
        assert!(r.throughput_rps > 0.0);
        assert!(r.makespan_ns > 0);
    }
}
