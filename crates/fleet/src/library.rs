//! The serving library: regions, variant catalogues, and lazy
//! generation of their bitstreams through the [`PartialStore`].
//!
//! Building a library runs the expensive CAD step once per variant
//! (guided re-implementation against the base design, paper Phase 2);
//! bitstream *emission* is deferred to first request, so a fleet that
//! never serves a variant never pays for its generation — and one that
//! serves it a million times pays exactly once.

use crate::store::{PartialKey, PartialStore, StoredPartial};
use crate::FleetError;
use bitstream::{full_bitstream, Bitstream, FrameRange};
use cadflow::netlist::Netlist;
use jpg::workflow::{implement_variant, module_constraints, BaseDesign};
use jpg::{FrameCache, JpgProject};
use std::sync::{Arc, RwLock};
use virtex::{BlockType, ConfigMemory, Device, IobCoord};
use xdl::{Constraints, Design, Placement, Rect};

/// One implemented variant, ready for lazy bitstream generation.
#[derive(Debug)]
pub struct VariantSlot {
    /// Variant name (the netlist's name).
    pub name: String,
    design: Design,
    constraints: Constraints,
}

/// One reconfigurable region and its catalogue of variants.
#[derive(Debug)]
pub struct RegionCatalog {
    /// Module prefix in the base design, e.g. `"region1/"`.
    pub prefix: String,
    /// Floorplan rectangle of the region.
    pub rect: Rect,
    /// Frame ranges of the region's CLB columns — the readback-compare
    /// scope. All module logic and its top/bottom edge pads configure
    /// within these frames.
    pub verify_ranges: Vec<FrameRange>,
    /// The module's pads (on base-design sites, where every variant
    /// keeps them), for driving inputs and sampling outputs.
    pub pads: Vec<(String, IobCoord)>,
    /// The variant catalogue.
    pub variants: Vec<VariantSlot>,
}

impl RegionCatalog {
    /// Site of the pad called `name`, if the region has one.
    pub fn pad(&self, name: &str) -> Option<IobCoord> {
        self.pads.iter().find(|(n, _)| n == name).map(|&(_, io)| io)
    }

    /// Total frames in the verify scope.
    pub fn verify_frames(&self) -> usize {
        self.verify_ranges.iter().map(|r| r.len).sum()
    }
}

/// Epoch-scoped base-design state (swapped wholesale on rebase).
#[derive(Debug)]
struct BaseState {
    project: JpgProject,
    cache: FrameCache,
    base_bitstream: Bitstream,
}

impl BaseState {
    fn new(name: &str, memory: ConfigMemory, regions: &[RegionCatalog]) -> BaseState {
        let cache = FrameCache::new();
        for r in regions {
            cache.prime_frames(
                &memory,
                jpg::region_frame_ranges(&memory, r.rect)
                    .into_iter()
                    .flat_map(|fr| fr.frames()),
            );
        }
        let base_bitstream = full_bitstream(&memory);
        BaseState {
            project: JpgProject::from_memory(name, memory),
            cache,
            base_bitstream,
        }
    }
}

/// The library: regions + store + the current base epoch's state.
#[derive(Debug)]
pub struct ServingLibrary {
    device: Device,
    regions: Vec<RegionCatalog>,
    state: RwLock<BaseState>,
    store: PartialStore,
}

impl ServingLibrary {
    /// Build a library from a base design and per-region variant
    /// catalogues (`(module prefix, variants)`). Every variant is
    /// re-implemented against the base (guided placement keeps its pads
    /// on base sites); bitstream generation is deferred to first use.
    pub fn build(
        base: &BaseDesign,
        catalogues: &[(String, Vec<Netlist>)],
        seed: u64,
    ) -> Result<ServingLibrary, FleetError> {
        let device = base.memory.device();
        let geom = base.memory.geometry();
        let mut regions = Vec::new();
        for (prefix, variants) in catalogues {
            let rect = base
                .constraints
                .region_for(&format!("{prefix}x"))
                .ok_or_else(|| {
                    FleetError::BadRequest(format!("no floorplan region for prefix {prefix:?}"))
                })?;
            let verify_ranges: Vec<FrameRange> = rect
                .cols()
                .filter_map(|c| geom.major_for_clb_col(c))
                .filter_map(|major| FrameRange::for_column(geom, BlockType::Clb, major))
                .collect();
            let pads: Vec<(String, IobCoord)> = base
                .design
                .instances
                .iter()
                .filter(|i| i.name.starts_with(prefix.as_str()))
                .filter_map(|i| match i.placement {
                    Placement::Iob(io) => Some((i.name.clone(), io)),
                    _ => None,
                })
                .collect();
            let mut slots = Vec::new();
            for (vi, nl) in variants.iter().enumerate() {
                let v = implement_variant(base, prefix, nl, seed ^ ((vi as u64) << 8))
                    .map_err(|e| FleetError::Workflow(format!("variant {}: {e}", nl.name)))?;
                slots.push(VariantSlot {
                    name: nl.name.clone(),
                    design: v.design,
                    constraints: module_constraints(prefix, rect),
                });
            }
            regions.push(RegionCatalog {
                prefix: prefix.clone(),
                rect,
                verify_ranges,
                pads,
                variants: slots,
            });
        }
        let state = BaseState::new("fleet-base", base.memory.clone(), &regions);
        Ok(ServingLibrary {
            device,
            regions,
            state: RwLock::new(state),
            store: PartialStore::new(),
        })
    }

    /// The library's device.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The region catalogues.
    pub fn regions(&self) -> &[RegionCatalog] {
        &self.regions
    }

    /// The current base epoch.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// The store (for inspection).
    pub fn store(&self) -> &PartialStore {
        &self.store
    }

    /// The base design's complete bitstream (board initialization).
    pub fn base_bitstream(&self) -> Bitstream {
        self.state
            .read()
            .expect("library lock")
            .base_bitstream
            .clone()
    }

    /// Swap in a new base image (the static design changed) and bump the
    /// epoch: every stored bitstream is invalidated and regenerates
    /// against the new base on next use. Returns the new epoch.
    ///
    /// The regions' floorplan must be unchanged — variants are not
    /// re-implemented, only re-stamped.
    pub fn rebase(&self, memory: ConfigMemory) -> u64 {
        let mut state = self.state.write().expect("library lock");
        *state = BaseState::new("fleet-base", memory, &self.regions);
        self.store.bump_epoch()
    }

    /// Pre-generate every `(region, variant)` bitstream for the current
    /// epoch, fanning the CAD work across worker threads — a fleet warmed
    /// this way serves its first requests with store hits only, instead
    /// of paying generation latency on the critical path. Returns the
    /// number of entries actually generated (already-stored ones are
    /// skipped by the store's once-per-epoch discipline).
    pub fn warm(&self) -> Result<usize, FleetError> {
        use rayon::prelude::*;
        let jobs: Vec<(usize, usize)> = self
            .regions
            .iter()
            .enumerate()
            .flat_map(|(r, cat)| (0..cat.variants.len()).map(move |v| (r, v)))
            .collect();
        let generated: Vec<usize> = jobs
            .par_iter()
            .map(|&(region, variant)| {
                let (result, hit) = self.resolve(region, variant);
                result.map(|_| usize::from(!hit))
            })
            .collect::<Result<_, FleetError>>()?;
        Ok(generated.iter().sum())
    }

    /// Resolve `(region, variant)` to its stored bitstreams, generating
    /// them exactly once per base epoch. The `bool` reports a store hit.
    pub fn resolve(
        &self,
        region: usize,
        variant: usize,
    ) -> (Result<Arc<StoredPartial>, FleetError>, bool) {
        let Some(cat) = self.regions.get(region) else {
            return (
                Err(FleetError::BadRequest(format!(
                    "region {region} out of range"
                ))),
                false,
            );
        };
        let Some(slot) = cat.variants.get(variant) else {
            return (
                Err(FleetError::BadRequest(format!(
                    "variant {variant} out of range for region {region}"
                ))),
                false,
            );
        };
        // Hold the base-state read lock across the epoch read *and* the
        // generation so a concurrent rebase cannot tear them apart.
        let state = self.state.read().expect("library lock");
        let key = PartialKey {
            device: self.device,
            region,
            variant,
            // The serving library stamps at the region's floorplanned
            // home; relocated origins are stitched downstream by the
            // reloc engine and stored under their own origin.
            origin: 0,
            epoch: self.store.epoch(),
        };
        let (result, hit) = self.store.get_or_generate(key, || {
            let wholesale = state
                .project
                .generate_partial_from(&slot.design, &slot.constraints)
                .map_err(|e| e.to_string())?;
            let incremental = state
                .project
                .generate_partial_incremental(&slot.design, &slot.constraints, &state.cache)
                .map_err(|e| e.to_string())?;
            let expected: Vec<u32> = cat
                .verify_ranges
                .iter()
                .flat_map(|r| r.frames())
                .flat_map(|f| wholesale.memory.frame(f).iter().copied())
                .collect();
            // Encode the wire containers once, alongside the plain
            // artifacts: the incremental delta-codes against the base
            // epoch's frames (the same contract the plain incremental
            // already carries), the wholesale stays base-free so it can
            // apply over any resident variant.
            let wire_wholesale = wire::encode(self.device, &wholesale.bitstream, None);
            let wire_incremental = wire::encode(
                self.device,
                &incremental.bitstream,
                Some(state.project.base_memory() as &dyn wire::FrameSource),
            );
            Ok(StoredPartial {
                key,
                full: full_bitstream(&wholesale.memory),
                expected,
                frames_wholesale: wholesale.frames,
                frames_incremental: incremental.frames,
                wholesale: wholesale.bitstream,
                incremental: incremental.bitstream,
                wire_wholesale,
                wire_incremental,
            })
        });
        (
            result.map_err(|msg| {
                FleetError::Generate(format!(
                    "{}{} (region {region}): {msg}",
                    cat.prefix, slot.name
                ))
            }),
            hit,
        )
    }
}
