//! The sharded event-driven scheduler: a small worker pool multiplexing
//! thousands of simulated boards over a discrete-event virtual clock.
//!
//! ## Why not a thread per board
//!
//! The original `Fleet` ran one OS thread per board, which caps a
//! single host at a few hundred boards and makes every schedule a race:
//! two runs of the same request stream could pick different boards,
//! different retry interleavings, different store-hit winners. This
//! module replaces it with discrete-event simulation. Boards are
//! partitioned round-robin into **shards**; each shard owns an event
//! heap ([`crate::clock::EventQueue`]), its boards' residency state,
//! three priority-class run queues, and a coalescing index. A shard is
//! strictly sequential — events pop in `(virtual time, insertion seq)`
//! order — so everything a shard does is a pure function of its inputs.
//!
//! ## Deterministic parallelism
//!
//! Wall-clock parallelism comes from *windowed* execution: the driver
//! finds the earliest pending event across all shards, opens a window
//! `[next, next + window)`, and hands every shard with work in that
//! window to a worker pool. Shards never touch each other's state, so
//! which worker runs which shard (and in what wall order) cannot change
//! any virtual outcome — running with 1, 2, or 8 workers produces
//! byte-identical event logs. Between windows the driver runs a
//! **sequential rebalance**: shards with queued work donate requests to
//! shards with idle boards (virtual-time work stealing). Because the
//! barrier is sequential and its inputs are deterministic shard states,
//! stealing is deterministic too.
//!
//! ## Serving semantics
//!
//! Per request, in arrival order per shard: resolve against the store →
//! zero-cost fast path if an idle board already holds the variant
//! verified → **coalesce** onto an in-flight download of the same
//! `(region, variant)` → dispatch to an idle board (preferring one
//! whose region still holds base content, where the small incremental
//! partial suffices) → otherwise queue under admission control (bounded
//! queue ⇒ typed [`OutcomeKind::Rejected`]; low-priority shed past a
//! watermark ⇒ [`OutcomeKind::Shed`]). Downloads retry with exponential
//! backoff exactly like the original service, and every attempt is
//! verified by (simulated) region readback compare.
//!
//! The scheduler is generic over a [`Backend`]: the real one drives
//! `SimBoard`s through XHWIF (see `service.rs`), the model one
//! ([`crate::sim`]) costs requests purely from byte counts so that 10k
//! boards × 1M requests fit in seconds of wall clock.

use crate::clock::{EventQueue, Vt};
use crate::metrics::FleetMetrics;
use crate::FleetError;
use reloc::{SlotMap, SlotMove};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Which bitstream the fleet downloads per swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Partial bitstreams from the store (the JPG flow): incremental
    /// when the region still holds base content, wholesale otherwise.
    Partial,
    /// A complete bitstream per swap (the conventional-flow baseline the
    /// paper argues against).
    FullSwap,
}

/// Admission priority class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Served before everything else in the queue.
    High,
    /// The default class.
    Normal,
    /// First to shed under load.
    Low,
}

impl Priority {
    /// Queue index: 0 drains first.
    pub fn class(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// One request in the virtual-time domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRequest {
    /// Caller-assigned identity, echoed in the outcome.
    pub id: u64,
    /// Virtual arrival instant.
    pub at: Vt,
    /// Region index.
    pub region: u32,
    /// Variant index within the region.
    pub variant: u32,
    /// Admission class.
    pub priority: Priority,
    /// Opaque payload handed to [`Backend::finish`] (the real backend
    /// uses it to index the caller's pad-drive list).
    pub payload: u32,
}

/// What the store resolution step learned about a request's artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    /// Whether the store already held the generated bitstreams.
    pub store_hit: bool,
    /// Identity of the generated artifact; every request coalesced onto
    /// one download observes the same generation.
    pub generation: u64,
    /// Incremental-partial bytes (base-resident region).
    pub bytes_incremental: u64,
    /// Wholesale-partial bytes (overwrites any resident content).
    pub bytes_wholesale: u64,
    /// Complete-bitstream bytes (the FullSwap baseline).
    pub bytes_full: u64,
    /// Region-scoped readback reply bytes for one verification pass.
    pub bytes_verify: u64,
}

/// Which bitstream flavor one download attempt pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Small partial against base content (first attempt only).
    Incremental,
    /// Self-sufficient partial that overwrites any resident state.
    Wholesale,
    /// Complete bitstream.
    Full,
}

/// How one download attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownloadStatus {
    /// Downloaded and readback-verified.
    Verified,
    /// The configuration port faulted mid-transfer.
    PortFault(String),
    /// The download completed but readback comparison mismatched (or
    /// the readback itself failed — distinguished by
    /// [`DownloadResult::readback_bytes`] being zero).
    VerifyMismatch,
}

/// The cost and result of one download attempt.
#[derive(Debug, Clone)]
pub struct DownloadResult {
    /// Attempt outcome.
    pub status: DownloadStatus,
    /// Configuration bytes pushed.
    pub bytes: u64,
    /// Simulated port time of the push, nanoseconds.
    pub download_ns: u64,
    /// Simulated port time of the verification readback, nanoseconds.
    pub verify_ns: u64,
    /// Readback reply bytes (zero when no readback happened).
    pub readback_bytes: u64,
}

/// What a board's region currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resident {
    /// Base content (fresh board or after rebase).
    Base,
    /// A verified variant.
    Variant(u32),
    /// A failed or unverified download landed here.
    Unknown,
}

/// How a request concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Served and verified.
    Served {
        /// No download at all: the variant was already resident on an
        /// idle board.
        resident: bool,
        /// Rode another request's in-flight download of the same key.
        coalesced: bool,
    },
    /// Exhausted its retry budget or failed resolution.
    Failed,
    /// Refused at admission: the shard queue was full.
    Rejected,
    /// Dropped at admission: low priority past the shed watermark.
    Shed,
}

/// The complete per-request record.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Request identity.
    pub id: u64,
    /// Request payload, echoed.
    pub payload: u32,
    /// Region requested.
    pub region: u32,
    /// Variant requested.
    pub variant: u32,
    /// Admission class.
    pub priority: Priority,
    /// How it concluded.
    pub kind: OutcomeKind,
    /// Global board index that served it, if any board was involved.
    pub board: Option<u32>,
    /// Download attempts spent (0 for resident/coalesced service).
    pub attempts: u32,
    /// Whether the store already held the bitstreams at resolution.
    pub store_hit: bool,
    /// Configuration bytes pushed for this request.
    pub bytes: u64,
    /// Simulated port time consumed (downloads + readbacks + backoff).
    pub port_ns: u64,
    /// Store generation observed (all coalesced riders see the same).
    pub generation: u64,
    /// Virtual arrival instant.
    pub arrived: Vt,
    /// Virtual instant service began (download start; equals
    /// `completed` for zero-cost service).
    pub started: Vt,
    /// Virtual completion instant.
    pub completed: Vt,
    /// Pad outputs from [`Backend::finish`].
    pub outputs: Vec<(String, bool)>,
    /// Failure detail for non-served outcomes.
    pub error: Option<String>,
}

impl Outcome {
    /// Whether the request was served (any [`OutcomeKind::Served`]).
    pub fn served(&self) -> bool {
        matches!(self.kind, OutcomeKind::Served { .. })
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Download flavor.
    pub mode: ServeMode,
    /// Download attempts per request before giving up.
    pub max_attempts: u32,
    /// First retry backoff (virtual port idle time); doubles per
    /// subsequent retry.
    pub backoff: Duration,
    /// Number of shards (clamped to the board count). Shard count — not
    /// worker count — fixes the virtual schedule, so results never
    /// depend on how many threads happen to run.
    pub shards: usize,
    /// Worker threads (0 = available parallelism), capped at the shard
    /// count. Changes wall time only, never virtual results.
    pub workers: usize,
    /// Virtual width of one parallel execution window.
    pub window: Duration,
    /// Per-shard admission queue bound; arrivals past it are
    /// [`OutcomeKind::Rejected`].
    pub queue_cap: usize,
    /// Per-shard backlog at which [`Priority::Low`] arrivals are
    /// [`OutcomeKind::Shed`].
    pub shed_watermark: usize,
    /// Whether same-key requests coalesce onto in-flight downloads.
    pub coalesce: bool,
    /// Whether to record the per-event log (golden-trace fixtures).
    pub log_events: bool,
    /// Online defragmentation policy; `None` leaves regions wherever
    /// their initial layout put them.
    pub defrag: Option<DefragConfig>,
}

/// Online defragmentation policy: every board tracks its regions'
/// column-slot occupancy in a [`SlotMap`], and whenever a board sits
/// idle for a dwell while holes exist below its high-water slot, the
/// scheduler relocates the highest resident region into the lowest hole
/// (one [`Backend::migrate`] download per move, fault-retried like any
/// other). Migrations are ordinary scheduler events, so they interleave
/// with request service deterministically.
#[derive(Debug, Clone)]
pub struct DefragConfig {
    /// Column slots per board.
    pub slots: usize,
    /// Initial slot of region `i` — the layout every board starts with.
    /// Slot indices must be distinct and below `slots`.
    pub layout: Vec<usize>,
    /// Idle dwell before an idle fragmented board starts its next
    /// migration.
    pub idle: Duration,
    /// Migration attempts per planned move before the board's
    /// defragmenter stands down (request service is never blocked on a
    /// failed migration — copy-then-free leaves the source slot live).
    pub max_attempts: u32,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            mode: ServeMode::Partial,
            max_attempts: 16,
            backoff: Duration::from_micros(20),
            shards: 8,
            workers: 0,
            window: Duration::from_micros(20),
            queue_cap: usize::MAX,
            shed_watermark: usize::MAX,
            coalesce: true,
            log_events: false,
            defrag: None,
        }
    }
}

/// What the scheduler needs from a board-and-store implementation.
///
/// The scheduler owns all timing, retry, residency, coalescing and
/// admission logic; the backend only resolves artifacts, prices/performs
/// downloads, and produces a request's functional outputs.
pub trait Backend: Sync {
    /// Resolved bitstream artifact handed back to every download.
    type Artifact: Clone + Send;
    /// Per-board state (the real backend keeps a `SimBoard` here).
    type Board: Send;

    /// Resolve a request against the store. `Err` is a terminal
    /// bad-request failure (no board involved).
    fn resolve(&self, req: &SimRequest) -> Result<(Self::Artifact, Resolved), String>;

    /// Perform one download attempt of `flavor` on `board` and price it
    /// in virtual port time, verification included.
    fn download(
        &self,
        board: &mut Self::Board,
        global: u32,
        art: &Self::Artifact,
        flavor: Flavor,
        res: &Resolved,
    ) -> DownloadResult;

    /// Produce the request's functional outputs on a board whose region
    /// verifiably runs the variant (drive pads, clock, sample).
    fn finish(&self, board: &mut Self::Board, region: u32, payload: u32) -> Vec<(String, bool)>;

    /// Relocate `region`'s resident content into a new column slot on
    /// `board` — one migration attempt, priced in virtual port time with
    /// verification included, exactly like a download. Returning `None`
    /// means this backend cannot relocate (the defragmenter then stands
    /// down fleet-wide); the default backend never migrates.
    fn migrate(
        &self,
        _board: &mut Self::Board,
        _global: u32,
        _region: u32,
        _resident: Resident,
    ) -> Option<DownloadResult> {
        None
    }
}

/// Everything the driver returns.
pub struct RunOutput<B: Backend> {
    /// Per-request outcomes, sorted by `(id, payload)`.
    pub outcomes: Vec<Outcome>,
    /// Board states, in global board order (for reuse across runs).
    pub states: Vec<B::Board>,
    /// Residency per board per region, in global board order.
    pub resident: Vec<Vec<Resident>>,
    /// Per-board simulated port busy time this run, nanoseconds.
    pub busy_ns: Vec<u64>,
    /// Latest virtual instant any shard processed.
    pub completed: Vt,
    /// Requests migrated between shards at rebalance barriers.
    pub stolen: u64,
    /// Slot migrations the defragmenter completed (verified moves).
    pub migrations: u64,
    /// Migration attempts that faulted and were retried or abandoned.
    pub migration_retries: u64,
    /// Summed per-board slot fragmentation before the run.
    pub frag_initial: u64,
    /// Summed per-board slot fragmentation after the run.
    pub frag_final: u64,
    /// Final slot occupancy per board, in global board order (empty
    /// maps when defragmentation is off).
    pub slots: Vec<SlotMap>,
    /// Merged event log (empty unless `log_events`).
    pub event_log: Vec<String>,
}

#[derive(Debug)]
enum Ev {
    Arrive(SimRequest),
    Complete {
        board: u32,
    },
    Kick,
    /// A board's idle dwell elapsed: consider starting a migration.
    Defrag {
        board: u32,
    },
    /// A migration attempt's port time elapsed.
    MigrateDone {
        board: u32,
    },
}

struct Queued<B: Backend> {
    req: SimRequest,
    art: B::Artifact,
    res: Resolved,
}

struct Job<B: Backend> {
    main: Queued<B>,
    riders: Vec<Queued<B>>,
    attempts: u32,
    bytes: u64,
    port_ns: u64,
    started: Vt,
    last_status: DownloadStatus,
}

/// One in-flight slot migration on a board.
struct Migration {
    mv: SlotMove,
    attempts: u32,
    port_ns: u64,
    last_status: DownloadStatus,
}

struct BoardCore<B: Backend> {
    state: B::Board,
    resident: Vec<Resident>,
    job: Option<Job<B>>,
    /// In-flight migration; mutually exclusive with `job` (a migrating
    /// board is out of the idle indexes, so it cannot be dispatched).
    migr: Option<Migration>,
    slots: SlotMap,
    /// The defragmenter exhausted a move's attempt budget on this board
    /// and stands down for the rest of the run.
    defrag_dead: bool,
    busy_ns: u64,
}

struct Shard<B: Backend> {
    id: usize,
    nshards: usize,
    cfg: SchedConfig,
    backoff_ns: u64,
    boards: Vec<BoardCore<B>>,
    events: EventQueue<Ev>,
    now: Vt,
    queues: [VecDeque<Queued<B>>; 3],
    queued: usize,
    queue_high: usize,
    inflight: HashMap<(u32, u32), u32>,
    idle: BTreeSet<u32>,
    idle_exact: HashMap<(u32, u32), BTreeSet<u32>>,
    idle_base: HashMap<u32, BTreeSet<u32>>,
    outcomes: Vec<Outcome>,
    migrations: u64,
    migration_retries: u64,
    /// Set when the backend declines to migrate: no further dwell
    /// timers are armed on this shard.
    migrate_off: bool,
    log: Vec<(u64, u64, String)>,
}

/// Bounded queue scan depth for the resident-exact fast path — keeps
/// drain cost O(1) per dispatch even against an arbitrarily deep queue.
const RESIDENT_SCAN: usize = 32;

/// Append to the shard event log without paying the format cost when
/// logging is off (the 1M-request hot path).
macro_rules! shlog {
    ($s:expr, $($t:tt)*) => {
        if $s.cfg.log_events {
            $s.logf(format!($($t)*));
        }
    };
}

impl<B: Backend> Shard<B> {
    fn global(&self, local: u32) -> u32 {
        (self.id + local as usize * self.nshards) as u32
    }

    fn logf(&mut self, text: String) {
        let seq = self.log.len() as u64;
        self.log.push((self.now.ns(), seq, text));
    }

    /// Re-file a board in the idle indexes (call when it has no job).
    /// An idle fragmented board arms a defragmentation dwell timer.
    fn index_insert(&mut self, b: u32) {
        self.idle.insert(b);
        if let Some(d) = &self.cfg.defrag {
            let core = &self.boards[b as usize];
            if !self.migrate_off && !core.defrag_dead && core.slots.fragmentation() > 0 {
                let due = self.now.after_ns(d.idle.as_nanos() as u64);
                self.events.push(due, Ev::Defrag { board: b });
            }
        }
        let core = &self.boards[b as usize];
        match self.cfg.mode {
            ServeMode::Partial => {
                for (r, res) in core.resident.iter().enumerate() {
                    match *res {
                        Resident::Variant(v) => {
                            self.idle_exact.entry((r as u32, v)).or_default().insert(b);
                        }
                        Resident::Base => {
                            self.idle_base.entry(r as u32).or_default().insert(b);
                        }
                        Resident::Unknown => {}
                    }
                }
            }
            ServeMode::FullSwap => {
                if let Some(key) = fullswap_key(&core.resident) {
                    self.idle_exact.entry(key).or_default().insert(b);
                }
            }
        }
    }

    fn index_remove(&mut self, b: u32) {
        self.idle.remove(&b);
        let core = &self.boards[b as usize];
        match self.cfg.mode {
            ServeMode::Partial => {
                for (r, res) in core.resident.iter().enumerate() {
                    match *res {
                        Resident::Variant(v) => {
                            if let Some(s) = self.idle_exact.get_mut(&(r as u32, v)) {
                                s.remove(&b);
                            }
                        }
                        Resident::Base => {
                            if let Some(s) = self.idle_base.get_mut(&(r as u32)) {
                                s.remove(&b);
                            }
                        }
                        Resident::Unknown => {}
                    }
                }
            }
            ServeMode::FullSwap => {
                if let Some(key) = fullswap_key(&self.boards[b as usize].resident) {
                    if let Some(s) = self.idle_exact.get_mut(&key) {
                        s.remove(&b);
                    }
                }
            }
        }
    }

    /// Idle board to start a download on: prefer one whose region still
    /// holds base content (the incremental partial is smaller), lowest
    /// index among candidates for determinism.
    fn pick_idle(&self, region: u32) -> Option<u32> {
        if self.cfg.mode == ServeMode::Partial {
            if let Some(&b) = self.idle_base.get(&region).and_then(|s| s.first()) {
                return Some(b);
            }
        }
        self.idle.first().copied()
    }

    fn run_until(&mut self, backend: &B, m: &FleetMetrics, end: Vt) {
        while let Some(ev) = self.events.pop_if_before(end) {
            self.now = ev.at;
            match ev.kind {
                Ev::Arrive(req) => self.on_arrive(backend, m, req),
                Ev::Complete { board } => self.on_complete(backend, m, board),
                Ev::Kick => self.drain(backend, m),
                Ev::Defrag { board } => self.on_defrag(backend, m, board),
                Ev::MigrateDone { board } => self.on_migrate_done(backend, m, board),
            }
        }
    }

    fn on_arrive(&mut self, backend: &B, m: &FleetMetrics, req: SimRequest) {
        m.requests_enqueued.inc();
        let (art, res) = match backend.resolve(&req) {
            Ok(x) => x,
            Err(e) => {
                m.requests_failed.inc();
                m.request_latency.record(Duration::ZERO);
                m.e2e_latency.record(Duration::ZERO);
                shlog!(self, "fail id={} error={e:?}", req.id);
                self.outcomes
                    .push(terminal(&req, OutcomeKind::Failed, self.now, Some(e)));
                return;
            }
        };
        if res.store_hit {
            m.store_hits.inc();
        } else {
            m.store_misses.inc();
        }
        shlog!(
            self,
            "arrive id={} key={}/{} prio={:?}",
            req.id,
            req.region,
            req.variant,
            req.priority
        );
        let q = Queued { req, art, res };
        self.admit(backend, m, q);
    }

    /// Route one resolved request: fast path → rider → dispatch → queue.
    fn admit(&mut self, backend: &B, m: &FleetMetrics, q: Queued<B>) {
        let key = (q.req.region, q.req.variant);
        if let Some(&b) = self.idle_exact.get(&key).and_then(|s| s.first()) {
            self.serve_resident(backend, m, b, q);
            return;
        }
        if self.cfg.coalesce {
            if let Some(&b) = self.inflight.get(&key) {
                m.coalesced.inc();
                shlog!(self, "rider id={} board={}", q.req.id, self.global(b));
                self.boards[b as usize]
                    .job
                    .as_mut()
                    .expect("inflight board has a job")
                    .riders
                    .push(q);
                return;
            }
        }
        if let Some(b) = self.pick_idle(q.req.region) {
            self.start_job(backend, m, b, q);
            return;
        }
        if self.queued >= self.cfg.queue_cap {
            m.rejected.inc();
            shlog!(self, "reject id={}", q.req.id);
            self.outcomes.push(terminal(
                &q.req,
                OutcomeKind::Rejected,
                self.now,
                Some(format!("queue full (cap {})", self.cfg.queue_cap)),
            ));
            return;
        }
        if q.req.priority == Priority::Low && self.queued >= self.cfg.shed_watermark {
            m.shed.inc();
            shlog!(self, "shed id={}", q.req.id);
            self.outcomes.push(terminal(
                &q.req,
                OutcomeKind::Shed,
                self.now,
                Some(format!(
                    "shed under load (watermark {})",
                    self.cfg.shed_watermark
                )),
            ));
            return;
        }
        self.queues[q.req.priority.class()].push_back(q);
        self.queued += 1;
        self.queue_high = self.queue_high.max(self.queued);
    }

    /// Zero-traffic service on an idle board that already runs the
    /// variant verified. The board stays idle.
    fn serve_resident(&mut self, backend: &B, m: &FleetMetrics, b: u32, q: Queued<B>) {
        let global = self.global(b);
        let outputs = backend.finish(
            &mut self.boards[b as usize].state,
            q.req.region,
            q.req.payload,
        );
        m.resident_hits.inc();
        m.requests_served.inc();
        m.request_latency.record(Duration::ZERO);
        m.e2e_latency
            .record(Duration::from_nanos(self.now.ns() - q.req.at.ns()));
        shlog!(self, "resident id={} board={global}", q.req.id);
        self.outcomes.push(Outcome {
            id: q.req.id,
            payload: q.req.payload,
            region: q.req.region,
            variant: q.req.variant,
            priority: q.req.priority,
            kind: OutcomeKind::Served {
                resident: true,
                coalesced: false,
            },
            board: Some(global),
            attempts: 0,
            store_hit: q.res.store_hit,
            bytes: 0,
            port_ns: 0,
            generation: q.res.generation,
            arrived: q.req.at,
            started: self.now,
            completed: self.now,
            outputs,
            error: None,
        });
    }

    fn start_job(&mut self, backend: &B, m: &FleetMetrics, b: u32, q: Queued<B>) {
        let key = (q.req.region, q.req.variant);
        self.index_remove(b);
        self.inflight.insert(key, b);
        // Sweep queued same-key requests into the rider list: they ride
        // this download instead of waiting for their own board.
        let mut riders = Vec::new();
        if self.cfg.coalesce {
            for class in 0..3 {
                let mut kept = VecDeque::with_capacity(self.queues[class].len());
                while let Some(x) = self.queues[class].pop_front() {
                    if (x.req.region, x.req.variant) == key {
                        m.coalesced.inc();
                        self.queued -= 1;
                        riders.push(x);
                    } else {
                        kept.push_back(x);
                    }
                }
                self.queues[class] = kept;
            }
        }
        shlog!(
            self,
            "dispatch id={} board={} riders={}",
            q.req.id,
            self.global(b),
            riders.len()
        );
        self.boards[b as usize].job = Some(Job {
            main: q,
            riders,
            attempts: 0,
            bytes: 0,
            port_ns: 0,
            started: self.now,
            last_status: DownloadStatus::Verified,
        });
        self.begin_attempt(backend, m, b);
    }

    fn begin_attempt(&mut self, backend: &B, m: &FleetMetrics, b: u32) {
        let global = self.global(b);
        let core = &mut self.boards[b as usize];
        let job = core.job.as_mut().expect("attempt on an idle board");
        job.attempts += 1;
        let pause_ns = if job.attempts > 1 {
            self.backoff_ns << (job.attempts - 2).min(10)
        } else {
            0
        };
        let region = job.main.req.region;
        let flavor = match self.cfg.mode {
            ServeMode::FullSwap => Flavor::Full,
            ServeMode::Partial => {
                if job.attempts == 1 && core.resident[region as usize] == Resident::Base {
                    Flavor::Incremental
                } else {
                    Flavor::Wholesale
                }
            }
        };
        // Any write leaves the region (or, for a full swap, the whole
        // board) in an unknown state until verified.
        match self.cfg.mode {
            ServeMode::Partial => core.resident[region as usize] = Resident::Unknown,
            ServeMode::FullSwap => core.resident.fill(Resident::Unknown),
        }
        let r = backend.download(
            &mut core.state,
            global,
            &job.main.art,
            flavor,
            &job.main.res,
        );
        job.bytes += r.bytes;
        job.port_ns += pause_ns + r.download_ns + r.verify_ns;
        m.downloads.inc();
        m.download_bytes.add(r.bytes);
        m.download_latency
            .record(Duration::from_nanos(r.download_ns));
        if r.readback_bytes > 0 {
            m.readback_bytes.add(r.readback_bytes);
            m.verify_latency.record(Duration::from_nanos(r.verify_ns));
            if r.status == DownloadStatus::VerifyMismatch {
                m.verify_failures.inc();
            }
        }
        let due = self.now.after_ns(pause_ns + r.download_ns + r.verify_ns);
        let id = job.main.req.id;
        let attempt = job.attempts;
        let bytes = r.bytes;
        job.last_status = r.status;
        shlog!(
            self,
            "attempt id={id} board={global} n={attempt} flavor={flavor:?} bytes={bytes}"
        );
        self.events.push(due, Ev::Complete { board: b });
    }

    fn on_complete(&mut self, backend: &B, m: &FleetMetrics, b: u32) {
        let global = self.global(b);
        let core = &mut self.boards[b as usize];
        let status = core
            .job
            .as_ref()
            .expect("completion on an idle board")
            .last_status
            .clone();
        match status {
            DownloadStatus::Verified => {
                let job = core.job.take().expect("checked above");
                let region = job.main.req.region;
                let variant = job.main.req.variant;
                core.resident[region as usize] = Resident::Variant(variant);
                if self.cfg.mode == ServeMode::FullSwap {
                    for (r, res) in core.resident.iter_mut().enumerate() {
                        if r != region as usize {
                            *res = Resident::Base;
                        }
                    }
                }
                core.busy_ns += job.port_ns;
                self.inflight.remove(&(region, variant));
                shlog!(
                    self,
                    "complete id={} board={global} attempts={} ok riders={}",
                    job.main.req.id,
                    job.attempts,
                    job.riders.len()
                );
                self.emit_served(backend, m, b, global, &job);
                for rider in &job.riders {
                    self.emit_rider(backend, m, b, global, rider, &job);
                }
                self.index_insert(b);
                self.drain(backend, m);
            }
            DownloadStatus::PortFault(_) | DownloadStatus::VerifyMismatch => {
                m.retries.inc();
                let exhausted =
                    core.job.as_ref().expect("checked above").attempts >= self.cfg.max_attempts;
                if !exhausted {
                    self.begin_attempt(backend, m, b);
                    return;
                }
                let job = core.job.take().expect("checked above");
                core.busy_ns += job.port_ns;
                self.inflight
                    .remove(&(job.main.req.region, job.main.req.variant));
                let last = match &status {
                    DownloadStatus::PortFault(e) => e.clone(),
                    _ => "readback verification mismatch".to_string(),
                };
                let msg = FleetError::Exhausted {
                    attempts: job.attempts,
                    last,
                }
                .to_string();
                shlog!(
                    self,
                    "exhausted id={} board={global} attempts={}",
                    job.main.req.id,
                    job.attempts
                );
                m.requests_failed.inc();
                m.request_latency.record(Duration::from_nanos(job.port_ns));
                m.e2e_latency
                    .record(Duration::from_nanos(self.now.ns() - job.main.req.at.ns()));
                self.outcomes.push(Outcome {
                    id: job.main.req.id,
                    payload: job.main.req.payload,
                    region: job.main.req.region,
                    variant: job.main.req.variant,
                    priority: job.main.req.priority,
                    kind: OutcomeKind::Failed,
                    board: Some(global),
                    attempts: job.attempts,
                    store_hit: job.main.res.store_hit,
                    bytes: job.bytes,
                    port_ns: job.port_ns,
                    generation: job.main.res.generation,
                    arrived: job.main.req.at,
                    started: job.started,
                    completed: self.now,
                    outputs: Vec::new(),
                    error: Some(msg.clone()),
                });
                for rider in &job.riders {
                    m.requests_failed.inc();
                    m.request_latency.record(Duration::ZERO);
                    m.e2e_latency
                        .record(Duration::from_nanos(self.now.ns() - rider.req.at.ns()));
                    self.outcomes.push(Outcome {
                        id: rider.req.id,
                        payload: rider.req.payload,
                        region: rider.req.region,
                        variant: rider.req.variant,
                        priority: rider.req.priority,
                        kind: OutcomeKind::Failed,
                        board: Some(global),
                        attempts: 0,
                        store_hit: rider.res.store_hit,
                        bytes: 0,
                        port_ns: 0,
                        generation: rider.res.generation,
                        arrived: rider.req.at,
                        started: self.now,
                        completed: self.now,
                        outputs: Vec::new(),
                        error: Some(msg.clone()),
                    });
                }
                self.index_insert(b);
                self.drain(backend, m);
            }
        }
    }

    fn emit_served(&mut self, backend: &B, m: &FleetMetrics, b: u32, global: u32, job: &Job<B>) {
        let outputs = backend.finish(
            &mut self.boards[b as usize].state,
            job.main.req.region,
            job.main.req.payload,
        );
        m.requests_served.inc();
        m.request_latency.record(Duration::from_nanos(job.port_ns));
        m.e2e_latency
            .record(Duration::from_nanos(self.now.ns() - job.main.req.at.ns()));
        self.outcomes.push(Outcome {
            id: job.main.req.id,
            payload: job.main.req.payload,
            region: job.main.req.region,
            variant: job.main.req.variant,
            priority: job.main.req.priority,
            kind: OutcomeKind::Served {
                resident: false,
                coalesced: false,
            },
            board: Some(global),
            attempts: job.attempts,
            store_hit: job.main.res.store_hit,
            bytes: job.bytes,
            port_ns: job.port_ns,
            generation: job.main.res.generation,
            arrived: job.main.req.at,
            started: job.started,
            completed: self.now,
            outputs,
            error: None,
        });
    }

    fn emit_rider(
        &mut self,
        backend: &B,
        m: &FleetMetrics,
        b: u32,
        global: u32,
        rider: &Queued<B>,
        job: &Job<B>,
    ) {
        let outputs = backend.finish(
            &mut self.boards[b as usize].state,
            rider.req.region,
            rider.req.payload,
        );
        m.resident_hits.inc();
        m.requests_served.inc();
        m.request_latency.record(Duration::ZERO);
        m.e2e_latency
            .record(Duration::from_nanos(self.now.ns() - rider.req.at.ns()));
        self.outcomes.push(Outcome {
            id: rider.req.id,
            payload: rider.req.payload,
            region: rider.req.region,
            variant: rider.req.variant,
            priority: rider.req.priority,
            kind: OutcomeKind::Served {
                resident: false,
                coalesced: true,
            },
            board: Some(global),
            attempts: 0,
            store_hit: rider.res.store_hit,
            bytes: 0,
            port_ns: 0,
            generation: job.main.res.generation,
            arrived: rider.req.at,
            started: self.now,
            completed: self.now,
            outputs,
            error: None,
        });
    }

    /// Dispatch queued work onto idle boards until one side runs out.
    fn drain(&mut self, backend: &B, m: &FleetMetrics) {
        while self.queued > 0 && !self.idle.is_empty() {
            if let Some((class, pos, b)) = self.find_resident_match() {
                let q = self.queues[class].remove(pos).expect("scanned position");
                self.queued -= 1;
                self.serve_resident(backend, m, b, q);
                continue;
            }
            let class = (0..3)
                .find(|&c| !self.queues[c].is_empty())
                .expect("queued > 0");
            let q = self.queues[class].pop_front().expect("non-empty class");
            self.queued -= 1;
            let key = (q.req.region, q.req.variant);
            if self.cfg.coalesce {
                if let Some(&ib) = self.inflight.get(&key) {
                    m.coalesced.inc();
                    shlog!(self, "rider id={} board={}", q.req.id, self.global(ib));
                    self.boards[ib as usize]
                        .job
                        .as_mut()
                        .expect("inflight board has a job")
                        .riders
                        .push(q);
                    continue;
                }
            }
            let b = self.pick_idle(q.req.region).expect("idle non-empty");
            self.start_job(backend, m, b, q);
        }
    }

    /// Bounded scan of the queue heads for a request whose exact
    /// variant sits verified on an idle board right now.
    fn find_resident_match(&self) -> Option<(usize, usize, u32)> {
        for class in 0..3 {
            for (pos, q) in self.queues[class].iter().take(RESIDENT_SCAN).enumerate() {
                let key = (q.req.region, q.req.variant);
                if let Some(&b) = self.idle_exact.get(&key).and_then(|s| s.first()) {
                    return Some((class, pos, b));
                }
            }
        }
        None
    }

    /// A dwell timer fired. If the board is still idle and its slot map
    /// has holes, take it out of service and start the next compaction
    /// move. Timers from superseded idle periods are simply stale: the
    /// board is busy (ignored here) and its next completion re-arms.
    fn on_defrag(&mut self, backend: &B, m: &FleetMetrics, b: u32) {
        if self.migrate_off || !self.idle.contains(&b) {
            return;
        }
        let core = &self.boards[b as usize];
        debug_assert!(core.job.is_none() && core.migr.is_none());
        if core.defrag_dead {
            return;
        }
        let Some(mv) = core.slots.plan_move() else {
            return;
        };
        self.index_remove(b);
        self.boards[b as usize].migr = Some(Migration {
            mv,
            attempts: 0,
            port_ns: 0,
            last_status: DownloadStatus::Verified,
        });
        self.begin_migration(backend, m, b);
    }

    /// Issue one migration attempt on a board whose `migr` is armed.
    fn begin_migration(&mut self, backend: &B, m: &FleetMetrics, b: u32) {
        let global = self.global(b);
        let core = &mut self.boards[b as usize];
        let mg = core.migr.as_mut().expect("migration armed");
        let resident = core.resident[mg.mv.region as usize];
        let Some(r) = backend.migrate(&mut core.state, global, mg.mv.region, resident) else {
            // The backend cannot relocate resident content — stand down
            // for the rest of the run and return the board to service.
            core.migr = None;
            self.migrate_off = true;
            self.index_insert(b);
            self.drain(backend, m);
            return;
        };
        mg.attempts += 1;
        mg.port_ns += r.download_ns + r.verify_ns;
        mg.last_status = r.status;
        let (mv, attempts, bytes) = (mg.mv, mg.attempts, r.bytes);
        let due = self.now.after_ns(r.download_ns + r.verify_ns);
        shlog!(
            self,
            "migrate-attempt board={global} {mv} n={attempts} bytes={bytes}"
        );
        self.events.push(due, Ev::MigrateDone { board: b });
    }

    fn on_migrate_done(&mut self, backend: &B, m: &FleetMetrics, b: u32) {
        let global = self.global(b);
        let core = &mut self.boards[b as usize];
        let status = core
            .migr
            .as_ref()
            .expect("completion on a non-migrating board")
            .last_status
            .clone();
        match status {
            DownloadStatus::Verified => {
                let mg = core.migr.take().expect("checked above");
                core.slots.apply(mg.mv);
                core.busy_ns += mg.port_ns;
                let (mv, attempts, frag) = (mg.mv, mg.attempts, core.slots.fragmentation());
                self.migrations += 1;
                m.migrations.inc();
                shlog!(
                    self,
                    "migrate board={global} {mv} attempts={attempts} frag={frag}"
                );
                // index_insert re-arms the dwell while frag > 0, so the
                // board keeps compacting across idle windows until the
                // occupied prefix is solid.
                self.index_insert(b);
                self.drain(backend, m);
            }
            DownloadStatus::PortFault(_) | DownloadStatus::VerifyMismatch => {
                self.migration_retries += 1;
                m.migration_retries.inc();
                let cap = self.cfg.defrag.as_ref().map_or(0, |d| d.max_attempts);
                if core.migr.as_ref().expect("checked above").attempts < cap {
                    self.begin_migration(backend, m, b);
                    return;
                }
                // Copy-then-free: a failed relocation never released the
                // source slot, so the board serves on — fragmented, but
                // correct. Stand down to guarantee run termination.
                let mg = core.migr.take().expect("checked above");
                core.busy_ns += mg.port_ns;
                core.defrag_dead = true;
                let (mv, attempts) = (mg.mv, mg.attempts);
                shlog!(
                    self,
                    "migrate-exhausted board={global} {mv} attempts={attempts}"
                );
                self.index_insert(b);
                self.drain(backend, m);
            }
        }
    }
}

/// A terminal (no-board) outcome: resolution failure, rejection, shed.
fn terminal(req: &SimRequest, kind: OutcomeKind, now: Vt, error: Option<String>) -> Outcome {
    Outcome {
        id: req.id,
        payload: req.payload,
        region: req.region,
        variant: req.variant,
        priority: req.priority,
        kind,
        board: None,
        attempts: 0,
        store_hit: false,
        bytes: 0,
        port_ns: 0,
        generation: 0,
        arrived: req.at,
        started: now,
        completed: now,
        outputs: Vec::new(),
        error,
    }
}

/// The FullSwap resident-exact key: exactly one region holds a variant
/// and every other region holds base content.
fn fullswap_key(resident: &[Resident]) -> Option<(u32, u32)> {
    let mut key = None;
    for (r, res) in resident.iter().enumerate() {
        match *res {
            Resident::Base => {}
            Resident::Variant(v) if key.is_none() => key = Some((r as u32, v)),
            _ => return None,
        }
    }
    key
}

/// Sequential inter-window rebalance: shards with queued work donate
/// requests to shards with spare idle boards. Runs at the window
/// barrier with every shard quiescent, so it is deterministic by
/// construction — wall-clock work stealing (workers pulling whole-shard
/// tasks) never touches virtual state.
fn rebalance<B: Backend>(shards: &mut [Mutex<Shard<B>>], end: Vt, m: &FleetMetrics) -> u64 {
    let mut moved = 0u64;
    loop {
        // Donor: deepest backlog among shards with *no* idle boards —
        // a shard holding both idle boards and queued work is merely
        // waiting on its own Kick and must not donate, or two such
        // shards would trade the same request forever. Lowest shard id
        // among ties.
        let mut donor: Option<(usize, usize)> = None; // (queued, idx)
        for (i, s) in shards.iter_mut().enumerate() {
            let s = s.get_mut().expect("shard lock");
            if s.idle.is_empty() && s.queued > 0 && donor.is_none_or(|(q, _)| s.queued > q) {
                donor = Some((s.queued, i));
            }
        }
        let Some((_, di)) = donor else { break };
        // Receiver: lowest shard id with more idle boards than backlog.
        // A donor has no idle boards, so it can never receive: every
        // steal strictly consumes receiver capacity and the loop
        // terminates.
        let Some(ri) = shards.iter_mut().position(|s| {
            let s = s.get_mut().expect("shard lock");
            s.idle.len() > s.queued
        }) else {
            break;
        };
        debug_assert_ne!(ri, di, "a donor shard cannot also be a receiver");
        // Steal from the back of the donor's lowest-priority class:
        // the least urgent work migrates.
        let (q, class, id) = {
            let d = shards[di].get_mut().expect("shard lock");
            let class = (0..3)
                .rev()
                .find(|&c| !d.queues[c].is_empty())
                .expect("queued > 0");
            let q = d.queues[class].pop_back().expect("non-empty class");
            d.queued -= 1;
            let id = q.req.id;
            if d.cfg.log_events {
                let seq = d.log.len() as u64;
                d.log
                    .push((end.ns(), seq, format!("steal id={id} to=s{ri}")));
            }
            (q, class, id)
        };
        {
            let r = shards[ri].get_mut().expect("shard lock");
            r.queues[class].push_back(q);
            r.queued += 1;
            r.queue_high = r.queue_high.max(r.queued);
            r.events.push(end, Ev::Kick);
            if r.cfg.log_events {
                let seq = r.log.len() as u64;
                r.log
                    .push((end.ns(), seq, format!("stolen id={id} from=s{di}")));
            }
        }
        m.stolen.inc();
        moved += 1;
    }
    moved
}

/// Run `trace` over `states`/`resident` with `backend`, returning every
/// outcome plus the final board states.
///
/// Results are a pure function of `(cfg.mode, cfg.max_attempts,
/// cfg.backoff, cfg.shards, cfg.window, admission knobs, trace, initial
/// state, backend)` — `cfg.workers` changes wall time only.
pub fn run<B: Backend>(
    backend: &B,
    metrics: &FleetMetrics,
    cfg: &SchedConfig,
    trace: Vec<SimRequest>,
    states: Vec<B::Board>,
    resident: Vec<Vec<Resident>>,
) -> RunOutput<B> {
    let nboards = states.len();
    assert!(nboards > 0, "a fleet needs at least one board");
    assert_eq!(nboards, resident.len(), "one residency vector per board");
    let nshards = cfg.shards.clamp(1, nboards);
    let workers = match cfg.workers {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        w => w,
    }
    .clamp(1, nshards);
    let window_ns = (cfg.window.as_nanos() as u64).max(1);
    // Every board starts from the configured slot layout; with no
    // defrag policy the map is empty and the defragmenter never runs.
    let init_slots = || match &cfg.defrag {
        Some(d) => {
            let mut s = SlotMap::new(d.slots);
            for (r, &slot) in d.layout.iter().enumerate() {
                s.place(r as u32, slot);
            }
            s
        }
        None => SlotMap::new(0),
    };
    let frag_initial = init_slots().fragmentation() as u64 * nboards as u64;
    metrics.fragmentation.record_level(frag_initial as i64);

    let mut shards: Vec<Shard<B>> = (0..nshards)
        .map(|id| Shard {
            id,
            nshards,
            cfg: cfg.clone(),
            backoff_ns: cfg.backoff.as_nanos() as u64,
            boards: Vec::new(),
            events: EventQueue::new(),
            now: Vt::ZERO,
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            queued: 0,
            queue_high: 0,
            inflight: HashMap::new(),
            idle: BTreeSet::new(),
            idle_exact: HashMap::new(),
            idle_base: HashMap::new(),
            outcomes: Vec::new(),
            migrations: 0,
            migration_retries: 0,
            migrate_off: false,
            log: Vec::new(),
        })
        .collect();
    for (g, (state, res)) in states.into_iter().zip(resident).enumerate() {
        shards[g % nshards].boards.push(BoardCore {
            state,
            resident: res,
            job: None,
            migr: None,
            slots: init_slots(),
            defrag_dead: false,
            busy_ns: 0,
        });
    }
    for s in &mut shards {
        for b in 0..s.boards.len() as u32 {
            s.index_insert(b);
        }
    }
    for (i, req) in trace.into_iter().enumerate() {
        let at = req.at;
        shards[i % nshards].events.push(at, Ev::Arrive(req));
    }

    let mut shards: Vec<Mutex<Shard<B>>> = shards.into_iter().map(Mutex::new).collect();
    let mut stolen = 0u64;
    loop {
        let next = shards
            .iter_mut()
            .filter_map(|s| s.get_mut().expect("shard lock").events.peek_at())
            .min();
        let Some(next) = next else { break };
        let end = next.after_ns(window_ns);
        let tasks: Vec<usize> = (0..shards.len())
            .filter(|&i| {
                shards[i]
                    .get_mut()
                    .expect("shard lock")
                    .events
                    .peek_at()
                    .is_some_and(|at| at < end)
            })
            .collect();
        if workers == 1 || tasks.len() == 1 {
            for &i in &tasks {
                shards[i]
                    .get_mut()
                    .expect("shard lock")
                    .run_until(backend, metrics, end);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let shards_ref = &shards;
            let tasks_ref = &tasks;
            std::thread::scope(|scope| {
                for _ in 0..workers.min(tasks.len()) {
                    scope.spawn(|| loop {
                        let k = cursor.fetch_add(1, Ordering::SeqCst);
                        let Some(&i) = tasks_ref.get(k) else { break };
                        shards_ref[i]
                            .lock()
                            .expect("shard lock")
                            .run_until(backend, metrics, end);
                    });
                }
            });
        }
        stolen += rebalance(&mut shards, end, metrics);
    }

    // Collect, mapping shard-local boards back to global indices.
    let mut outcomes = Vec::new();
    let mut states_out: Vec<Option<B::Board>> = (0..nboards).map(|_| None).collect();
    let mut resident_out = vec![Vec::new(); nboards];
    let mut slots_out = vec![SlotMap::new(0); nboards];
    let mut busy_ns = vec![0u64; nboards];
    let mut completed = Vt::ZERO;
    let mut log = Vec::new();
    let mut queue_high = 0usize;
    let mut migrations = 0u64;
    let mut migration_retries = 0u64;
    for (sid, shard) in shards.into_iter().enumerate() {
        let shard = shard.into_inner().expect("shard lock");
        debug_assert!(shard.queued == 0, "drained scheduler left queued work");
        debug_assert!(
            shard.boards.iter().all(|b| b.job.is_none()),
            "drained scheduler left a job in flight"
        );
        debug_assert!(
            shard.boards.iter().all(|b| b.migr.is_none()),
            "drained scheduler left a migration in flight"
        );
        completed = completed.max(shard.now);
        queue_high = queue_high.max(shard.queue_high);
        migrations += shard.migrations;
        migration_retries += shard.migration_retries;
        metrics.record_shard(
            sid,
            shard.outcomes.len() as u64,
            shard.boards.iter().map(|b| b.busy_ns).sum::<u64>() / 1_000,
        );
        for (local, core) in shard.boards.into_iter().enumerate() {
            let g = sid + local * shard.nshards;
            states_out[g] = Some(core.state);
            resident_out[g] = core.resident;
            slots_out[g] = core.slots;
            busy_ns[g] = core.busy_ns;
        }
        for (at, seq, text) in shard.log {
            log.push((at, sid, seq, text));
        }
        outcomes.extend(shard.outcomes);
    }
    let frag_final: u64 = slots_out.iter().map(|s| s.fragmentation() as u64).sum();
    metrics.fragmentation.record_level(frag_final as i64);
    outcomes.sort_by_key(|o| (o.id, o.payload));
    log.sort_by_key(|a| (a.0, a.1, a.2));
    let event_log = log
        .into_iter()
        .map(|(at, sid, _, text)| format!("{at:>12} s{sid:02} {text}"))
        .collect();
    metrics.queue_depth.record_level(queue_high as i64);
    metrics.queue_depth.record_level(0);
    RunOutput {
        outcomes,
        states: states_out
            .into_iter()
            .map(|s| s.expect("every board returned"))
            .collect(),
        resident: resident_out,
        busy_ns,
        completed,
        stolen,
        migrations,
        migration_retries,
        frag_initial,
        frag_final,
        slots: slots_out,
        event_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, FleetSimSpec};

    fn small_spec() -> FleetSimSpec {
        FleetSimSpec {
            boards: 8,
            requests: 400,
            regions: 2,
            variants: 4,
            seed: 42,
            ..FleetSimSpec::default()
        }
    }

    #[test]
    fn every_request_gets_exactly_one_outcome() {
        let r = simulate(&small_spec());
        assert_eq!(r.outcomes.len(), 400);
        let mut ids: Vec<u64> = r.outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400, "no request lost or double-served");
        assert_eq!(r.served + r.failed + r.rejected + r.shed, 400);
        assert_eq!(r.failed + r.rejected + r.shed, 0, "clean run serves all");
    }

    #[test]
    fn coalescing_collapses_hot_key_downloads() {
        let mut spec = small_spec();
        spec.boards = 2;
        spec.variants = 1;
        spec.regions = 1; // one single key: everything coalesces
        spec.requests = 200;
        let r = simulate(&spec);
        assert_eq!(r.served, 200);
        assert!(
            r.downloads <= 4,
            "one key needs at most a download per board, got {}",
            r.downloads
        );
        assert!(r.coalesced + r.resident_hits >= 190);
        // Every coalesced rider observed the same store generation as
        // the download it rode.
        let gen0 = r.outcomes[0].generation;
        assert!(r.outcomes.iter().all(|o| o.generation == gen0));
    }

    #[test]
    fn admission_control_rejects_and_sheds_typed() {
        let mut spec = small_spec();
        spec.boards = 1;
        spec.shards = 1;
        spec.requests = 64;
        spec.queue_cap = 4;
        spec.shed_watermark = 2;
        spec.mean_gap_ns = 1; // slam the queue
        spec.coalesce = false; // force real queue pressure
        spec.zipf_s = 0.0;
        let r = simulate(&spec);
        assert_eq!(
            r.served + r.failed + r.rejected + r.shed,
            64,
            "admission decisions still produce outcomes"
        );
        assert!(r.rejected > 0, "cap 4 under slam must reject");
        assert!(
            r.outcomes
                .iter()
                .filter(|o| o.kind == OutcomeKind::Rejected)
                .all(|o| o.error.as_deref().is_some_and(|e| e.contains("queue full"))),
            "rejections carry a typed reason"
        );
        // Backpressure never drops an admitted request: everything not
        // rejected/shed at the door was served or failed with a reason.
        assert!(r.outcomes.iter().all(|o| o.served() || o.error.is_some()));
    }

    #[test]
    fn shed_hits_low_priority_only() {
        let mut spec = small_spec();
        spec.boards = 1;
        spec.shards = 1;
        spec.requests = 200;
        spec.queue_cap = usize::MAX;
        spec.shed_watermark = 2;
        spec.mean_gap_ns = 1;
        spec.coalesce = false;
        spec.zipf_s = 0.0;
        spec.low_fraction = 0.5;
        spec.high_fraction = 0.1;
        let r = simulate(&spec);
        assert!(r.shed > 0, "low traffic past the watermark must shed");
        assert!(r
            .outcomes
            .iter()
            .filter(|o| o.kind == OutcomeKind::Shed)
            .all(|o| o.priority == Priority::Low));
        assert_eq!(r.rejected, 0, "unbounded queue never rejects");
    }

    #[test]
    fn bad_requests_fail_with_typed_errors() {
        let spec = small_spec();
        let trace = vec![
            SimRequest {
                id: 0,
                at: Vt::ZERO,
                region: 99,
                variant: 0,
                priority: Priority::Normal,
                payload: 0,
            },
            SimRequest {
                id: 1,
                at: Vt::ZERO,
                region: 0,
                variant: 99,
                priority: Priority::Normal,
                payload: 1,
            },
        ];
        let r = crate::sim::simulate_trace(&spec, trace);
        assert_eq!(r.failed, 2);
        assert!(r.outcomes[0]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("region")));
        assert!(r.outcomes[1]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("variant")));
    }

    #[test]
    fn faults_retry_to_full_success_and_contiguous_attempts() {
        let mut spec = small_spec();
        spec.fault_rate = 0.3;
        let r = simulate(&spec);
        assert_eq!(r.served, 400, "every request eventually succeeds");
        assert!(r.retries > 0, "a 30% fault rate must force retries");
        // Attempts are contiguous in virtual time: a download job's
        // completion is exactly its start plus its port time.
        for o in r.outcomes.iter().filter(|o| o.bytes > 0) {
            assert_eq!(o.completed.ns(), o.started.ns() + o.port_ns);
        }
    }

    #[test]
    fn per_board_downloads_never_overlap_in_virtual_time() {
        let mut spec = small_spec();
        spec.fault_rate = 0.2;
        spec.boards = 4;
        let r = simulate(&spec);
        let mut per_board: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        for o in r.outcomes.iter().filter(|o| o.bytes > 0) {
            per_board
                .entry(o.board.expect("download has a board"))
                .or_default()
                .push((o.started.ns(), o.completed.ns()));
        }
        for (board, mut spans) in per_board {
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "board {board} ran two downloads concurrently: {w:?}"
                );
            }
        }
    }

    #[test]
    fn work_stealing_migrates_backlog_to_idle_shards() {
        let mut spec = small_spec();
        spec.boards = 8;
        spec.shards = 4;
        spec.requests = 400;
        spec.zipf_s = 0.0;
        spec.coalesce = false; // pile real queue depth on unlucky shards
        spec.mean_gap_ns = 1;
        let r = simulate(&spec);
        assert_eq!(r.served, 400);
        assert!(r.stolen > 0, "slammed shards must donate work");
    }

    /// Per-board frag levels parsed from `migrate board=G … frag=F`
    /// event-log lines, in log order.
    fn frag_trail(log: &[String]) -> HashMap<String, Vec<u64>> {
        let mut trail: HashMap<String, Vec<u64>> = HashMap::new();
        for line in log {
            let Some(rest) = line.split(" migrate board=").nth(1) else {
                continue;
            };
            let board = rest.split_whitespace().next().unwrap().to_string();
            let frag = rest
                .split("frag=")
                .nth(1)
                .expect("migrate line carries frag")
                .trim()
                .parse::<u64>()
                .expect("frag level is numeric");
            trail.entry(board).or_default().push(frag);
        }
        trail
    }

    #[test]
    fn defrag_compacts_every_board_and_still_serves_everything() {
        let mut spec = small_spec();
        spec.defrag = true;
        spec.fault_rate = 0.1;
        spec.log_events = true;
        let r = simulate(&spec);
        assert_eq!(r.served, 400, "migration never costs a request");
        assert!(r.frag_initial > 0, "scattered layout starts fragmented");
        assert_eq!(r.frag_final, 0, "idle windows fully compact the fleet");
        assert!(r.migrations > 0 && r.migrations <= r.frag_initial);
        // Every applied move strictly decreases its board's frag level,
        // straight down to zero.
        let trail = frag_trail(&r.event_log);
        assert_eq!(trail.len(), spec.boards, "every board compacted");
        for (board, frags) in trail {
            for w in frags.windows(2) {
                assert!(w[1] < w[0], "board {board} frag went {w:?}");
            }
            assert_eq!(*frags.last().unwrap(), 0, "board {board} not compact");
        }
    }

    #[test]
    fn defrag_off_means_no_migration_traffic() {
        let r = simulate(&small_spec());
        assert_eq!(r.migrations, 0);
        assert_eq!(r.migration_retries, 0);
        assert_eq!(r.frag_initial, 0);
        assert_eq!(r.frag_final, 0);
    }

    #[test]
    fn defrag_faults_retry_and_are_counted() {
        let mut spec = small_spec();
        spec.defrag = true;
        spec.fault_rate = 0.4;
        let r = simulate(&spec);
        assert_eq!(r.served, 400);
        assert_eq!(r.frag_final, 0, "retries still converge at 40% faults");
        assert!(r.migration_retries > 0, "40% faults must hit migrations");
        assert_eq!(
            r.snapshot.counter_total("fleet_migrations_total").unwrap(),
            r.migrations
        );
    }

    #[test]
    fn full_swap_costs_more_traffic_than_partial() {
        let mut spec = small_spec();
        spec.zipf_s = 0.0;
        let p = simulate(&spec);
        spec.mode = ServeMode::FullSwap;
        let f = simulate(&spec);
        assert_eq!(p.served, 400);
        assert_eq!(f.served, 400);
        assert!(
            f.download_bytes > 2 * p.download_bytes,
            "full {} vs partial {}",
            f.download_bytes,
            p.download_bytes
        );
    }
}
