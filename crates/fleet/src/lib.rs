//! `fleet` — a concurrent reconfiguration service over simulated XHWIF
//! boards.
//!
//! The paper's closing argument for JPG is operational: a partial
//! bitstream is a *runtime* artifact, downloaded over and over while the
//! static design keeps running. This crate builds that runtime. A
//! [`ServingLibrary`] holds a base design plus per-region variant
//! catalogues and lazily generates each variant's bitstreams exactly
//! once into a content-addressed [`PartialStore`] keyed by
//! `(device, region, variant, base-epoch)`. A [`Fleet`] owns a pool of
//! [`simboard::SimBoard`]s behind [`jbits::Xhwif`] and drains a queue of
//! [`Request`]s — "run variant V in region R, step the clock, return the
//! pad outputs" — scheduling each onto the board that has to rewrite the
//! fewest frames (SelectMAP byte-cycle timing as the cost function),
//! then verifying every download by region-scoped readback compare with
//! retry + exponential backoff against injected port faults.
//!
//! [`ServeMode::FullSwap`] runs the identical service with complete
//! bitstreams per swap, so a benchmark can put a number on the paper's
//! claim: the partial fleet serves the same request stream with a small
//! fraction of the configuration traffic.

pub mod clock;
pub mod library;
pub mod metrics;
pub mod sched;
pub mod service;
pub mod sim;
pub mod store;
pub mod trace;

pub use clock::Vt;
pub use library::{RegionCatalog, ServingLibrary, VariantSlot};
pub use metrics::{Counter, FleetMetrics, Gauge, Histogram};
pub use sched::{
    Backend, DefragConfig, Outcome, OutcomeKind, Priority, Resident, SchedConfig, ServeMode,
    SimRequest,
};
pub use service::{Fleet, FleetConfig, FleetReport, Request, Response, WireFormat};
pub use sim::{simulate, simulate_trace, FleetSimSpec, SimReport};
pub use store::{PartialKey, PartialStore, StoredPartial};
pub use trace::TraceSpec;

/// Errors the service surfaces to callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The CAD workflow failed while building the library.
    Workflow(String),
    /// Bitstream generation failed for a library entry.
    Generate(String),
    /// A board rejected a configuration operation outside the retry
    /// loop (base-image download at fleet construction).
    Config(String),
    /// The request named a region or variant the library doesn't have.
    BadRequest(String),
    /// A request exhausted its download attempts.
    Exhausted {
        /// Attempts spent before giving up.
        attempts: u32,
        /// The final attempt's error.
        last: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Workflow(m) => write!(f, "workflow error: {m}"),
            FleetError::Generate(m) => write!(f, "bitstream generation failed: {m}"),
            FleetError::Config(m) => write!(f, "board configuration failed: {m}"),
            FleetError::BadRequest(m) => write!(f, "bad request: {m}"),
            FleetError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last error: {last})")
            }
        }
    }
}

impl std::error::Error for FleetError {}
