//! Property tests for the event-driven scheduler, over randomized
//! fleet shapes, workloads, fault rates, and admission limits.
//!
//! Invariants pinned here:
//!  * conservation — every request gets exactly one outcome, none lost,
//!    none double-served, under any spec;
//!  * coalescing — riders are zero-cost, land on the same board at the
//!    same virtual instant as the download they rode, and observe the
//!    same store generation;
//!  * per-board serialization — one board never runs two downloads
//!    concurrently in virtual time;
//!  * backpressure — admission control only ever refuses requests with
//!    a typed `Rejected`/`Shed` outcome; an *admitted* request is never
//!    dropped: it terminates as served or failed-with-reason.

use fleet::sim::{simulate, FleetSimSpec};
use fleet::{OutcomeKind, Priority};
use proptest::prelude::*;
use std::collections::HashMap;

fn spec_from(
    seed: u64,
    boards: usize,
    shards: usize,
    requests: usize,
    fault_permille: u32,
    queue_cap: usize,
    shed_watermark: usize,
) -> FleetSimSpec {
    FleetSimSpec {
        boards,
        shards: shards.min(boards).max(1),
        workers: 0,
        requests,
        regions: 2,
        variants: 3,
        fault_rate: fault_permille as f64 / 1000.0,
        queue_cap,
        shed_watermark,
        seed,
        ..FleetSimSpec::default()
    }
}

proptest! {
    /// Conservation: one outcome per request, ids unique, the four
    /// outcome classes partition the stream exactly.
    #[test]
    fn no_request_is_lost_or_double_served(
        seed in 0u64..1_000_000,
        boards in 1usize..24,
        requests in 1usize..400,
        fault_permille in 0u32..400,
    ) {
        let r = simulate(&spec_from(seed, boards, 8, requests, fault_permille, usize::MAX, usize::MAX));
        prop_assert_eq!(r.outcomes.len(), requests);
        let mut ids: Vec<u64> = r.outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), requests, "duplicate or missing outcome ids");
        prop_assert_eq!(
            (r.served + r.failed + r.rejected + r.shed) as usize,
            requests
        );
    }

    /// Every rider is free (no bytes, no attempts, no port time) and
    /// observes the same generation, board, and completion instant as a
    /// real download of its key.
    #[test]
    fn coalesced_riders_are_free_and_consistent(
        seed in 0u64..1_000_000,
        boards in 1usize..8,
        requests in 20usize..300,
    ) {
        let r = simulate(&spec_from(seed, boards, 4, requests, 0, usize::MAX, usize::MAX));
        // (board, completed-instant) of every download that succeeded.
        let mut downloads: HashMap<(u32, u64), u64> = HashMap::new();
        for o in &r.outcomes {
            if matches!(o.kind, OutcomeKind::Served { resident: false, coalesced: false }) && o.bytes > 0 {
                downloads.insert((o.board.unwrap(), o.completed.ns()), o.generation);
            }
        }
        for o in &r.outcomes {
            if let OutcomeKind::Served { coalesced: true, .. } = o.kind {
                prop_assert_eq!(o.bytes, 0, "rider paid for bytes");
                prop_assert_eq!(o.attempts, 0, "rider spent attempts");
                prop_assert_eq!(o.port_ns, 0, "rider consumed port time");
                let key = (o.board.expect("rider has a board"), o.completed.ns());
                let gen = downloads.get(&key);
                prop_assert_eq!(
                    gen, Some(&o.generation),
                    "rider must complete with the download it rode"
                );
            }
        }
    }

    /// One board, one port: download spans on the same board never
    /// overlap in virtual time, whatever the fault rate does to retry
    /// schedules.
    #[test]
    fn per_board_downloads_are_serialized(
        seed in 0u64..1_000_000,
        boards in 1usize..12,
        requests in 10usize..250,
        fault_permille in 0u32..500,
    ) {
        let r = simulate(&spec_from(seed, boards, 8, requests, fault_permille, usize::MAX, usize::MAX));
        let mut spans: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        for o in r.outcomes.iter().filter(|o| o.bytes > 0) {
            // A download job is contiguous: completion = start + port.
            prop_assert_eq!(o.completed.ns(), o.started.ns() + o.port_ns);
            spans
                .entry(o.board.expect("download has a board"))
                .or_default()
                .push((o.started.ns(), o.completed.ns()));
        }
        for (board, mut s) in spans {
            s.sort_unstable();
            for w in s.windows(2) {
                prop_assert!(
                    w[0].1 <= w[1].0,
                    "board {} ran two downloads concurrently: {:?}",
                    board, w
                );
            }
        }
    }

    /// Backpressure never drops an admitted request. Refusals are typed
    /// and happen only at admission; everything admitted terminates as
    /// served or failed-with-reason, and only Low priority is ever shed.
    #[test]
    fn backpressure_refuses_typed_and_never_drops_admitted(
        seed in 0u64..1_000_000,
        boards in 1usize..6,
        requests in 50usize..300,
        queue_cap in 1usize..8,
        shed_watermark in 1usize..6,
    ) {
        let mut spec = spec_from(seed, boards, 2, requests, 100, queue_cap, shed_watermark);
        spec.mean_gap_ns = 50; // slam admission
        let r = simulate(&spec);
        prop_assert_eq!(r.outcomes.len(), requests);
        for o in &r.outcomes {
            match o.kind {
                OutcomeKind::Served { .. } => prop_assert!(o.error.is_none()),
                OutcomeKind::Failed => prop_assert!(o.error.is_some(), "silent failure"),
                OutcomeKind::Rejected => prop_assert!(
                    o.error.as_deref().is_some_and(|e| e.contains("queue full"))
                ),
                OutcomeKind::Shed => {
                    prop_assert_eq!(o.priority, Priority::Low, "shed a non-Low request");
                    prop_assert!(o.error.as_deref().is_some_and(|e| e.contains("shed")));
                }
            }
        }
    }

    /// Worker count is invisible to virtual results even on randomized
    /// specs (the determinism suite pins one big scenario; this sweeps
    /// many small ones).
    #[test]
    fn worker_count_never_changes_outcomes(
        seed in 0u64..1_000_000,
        boards in 1usize..16,
        requests in 1usize..150,
        fault_permille in 0u32..300,
    ) {
        let mut spec = spec_from(seed, boards, 8, requests, fault_permille, usize::MAX, usize::MAX);
        spec.workers = 1;
        let a = simulate(&spec);
        spec.workers = 4;
        let b = simulate(&spec);
        prop_assert_eq!(a.outcomes, b.outcomes);
        prop_assert_eq!(a.completed.ns(), b.completed.ns());
    }
}
