//! End-to-end tests for the fleet service: a real base design, real
//! variant catalogues, real partial bitstreams, simulated boards.

use cadflow::gen;
use cadflow::netlist::Netlist;
use fleet::{Fleet, FleetConfig, Request, ServeMode, ServingLibrary};
use jpg::workflow::{build_base, BaseDesign, ModuleSpec};
use std::sync::Arc;
use virtex::Device;
use xdl::Rect;

/// Two full-height regions on an XCV50, two variants each. Small enough
/// that the CAD step stays fast, rich enough to exercise scheduling.
fn fixture() -> (BaseDesign, Vec<(String, Vec<Netlist>)>) {
    let rows = Device::XCV50.geometry().clb_rows as i32 - 1;
    let catalogues = vec![
        (
            "r1/".to_string(),
            vec![gen::counter("up", 3), gen::gray_counter("gray", 3)],
        ),
        (
            "r2/".to_string(),
            vec![gen::down_counter("down", 3), gen::lfsr("lfsr", 3)],
        ),
    ];
    let modules: Vec<ModuleSpec> = vec![
        ModuleSpec {
            prefix: "r1/".into(),
            netlist: catalogues[0].1[0].clone(),
            region: Rect::new(0, 1, rows, 4),
        },
        ModuleSpec {
            prefix: "r2/".into(),
            netlist: catalogues[1].1[0].clone(),
            region: Rect::new(0, 7, rows, 10),
        },
    ];
    let base = build_base("fleet-test", Device::XCV50, &modules, 7).expect("base design");
    (base, catalogues)
}

fn library() -> Arc<ServingLibrary> {
    let (base, catalogues) = fixture();
    Arc::new(ServingLibrary::build(&base, &catalogues, 90).expect("library"))
}

/// Count-up request: enable the counter, reset, step `clocks`.
fn counting_request(id: u64, region: usize, variant: usize, clocks: u64) -> Request {
    let prefix = if region == 0 { "r1/" } else { "r2/" };
    Request {
        id,
        region,
        variant,
        drive: vec![(format!("{prefix}en"), true)],
        reset: true,
        clocks,
    }
}

/// Decode a `q[i]` output bus from a response's pad list.
fn bus_value(outputs: &[(String, bool)], prefix: &str) -> u64 {
    let mut v = 0u64;
    for (name, bit) in outputs {
        if let Some(rest) = name.strip_prefix(prefix) {
            if let Some(i) = rest
                .strip_prefix("q[")
                .and_then(|s| s.strip_suffix(']'))
                .and_then(|s| s.parse::<u32>().ok())
            {
                v |= (*bit as u64) << i;
            }
        }
    }
    v
}

#[test]
fn serves_a_mixed_stream_with_functional_outputs() {
    let lib = library();
    let fleet = Fleet::new(lib.clone(), 2, FleetConfig::default()).expect("fleet");

    // Hit every (region, variant) pair, then revisit the up-counter with
    // a different clock count.
    let requests = vec![
        counting_request(0, 0, 0, 5), // r1 up-counter: 5 → q = 5
        counting_request(1, 0, 1, 1), // r1 gray: 1 → gray(1) = 1
        counting_request(2, 1, 0, 3), // r2 down-counter: 0 - 3 = 5 (mod 8)
        counting_request(3, 1, 1, 0), // r2 lfsr: seed = 1
        counting_request(4, 0, 0, 6), // r1 up-counter again: q = 6
    ];
    let report = fleet.run(requests);
    assert_eq!(report.served, 5);
    assert_eq!(report.failed, 0);
    assert_eq!(
        fleet.metrics().verify_failures.get(),
        0,
        "no faults → no mismatches"
    );
    assert!(report.makespan > std::time::Duration::ZERO);

    let q = |id: usize, prefix: &str| bus_value(&report.responses[id].outputs, prefix);
    assert_eq!(q(0, "r1/"), 5, "up-counter after 5 clocks");
    assert_eq!(q(1, "r1/"), 1, "gray code of 1");
    assert_eq!(q(2, "r2/"), 5, "down-counter wraps to 5");
    assert_eq!(q(3, "r2/"), 1, "lfsr power-on seed");
    assert_eq!(q(4, "r1/"), 6, "up-counter after 6 clocks");

    // Ten store lookups for five requests? No — one per request, four
    // distinct keys, so exactly 4 misses (each generated once).
    assert_eq!(fleet.metrics().store_misses.get(), 4);
    assert_eq!(fleet.metrics().store_hits.get(), 1);
    assert_eq!(lib.store().len(), 4);
}

#[test]
fn resident_variant_is_a_zero_traffic_fast_path() {
    let lib = library();
    let fleet = Fleet::new(lib, 1, FleetConfig::default()).expect("fleet");

    let first = fleet.run(vec![counting_request(0, 0, 1, 2)]);
    assert_eq!(first.served, 1);
    let downloads_after_first = fleet.metrics().downloads.get();
    assert!(downloads_after_first >= 1);

    // Same variant again: nothing touches the port, and the circuit
    // keeps counting from where it was (no reset this time).
    let mut again = counting_request(1, 0, 1, 1);
    again.reset = false;
    let second = fleet.run(vec![again]);
    assert_eq!(second.served, 1);
    let resp = &second.responses[0];
    assert!(
        resp.resident_hit,
        "second request rides the resident variant"
    );
    assert_eq!(resp.attempts, 0);
    assert_eq!(resp.bytes, 0);
    assert_eq!(
        resp.port_time,
        std::time::Duration::ZERO,
        "no port traffic at all on a resident hit"
    );
    assert_eq!(fleet.metrics().downloads.get(), downloads_after_first);
    assert_eq!(fleet.metrics().resident_hits.get(), 1);
    // Gray counter stepped 2 then 1 more: gray(3) = 0b10.
    assert_eq!(bus_value(&resp.outputs, "r1/"), 2);
}

#[test]
fn warm_prefetches_the_whole_catalogue_once() {
    let lib = library();
    assert_eq!(lib.warm().expect("warm"), 4, "2 regions x 2 variants");
    assert_eq!(lib.store().len(), 4);
    // Warming again (same epoch) is a no-op; every entry is a store hit.
    assert_eq!(lib.warm().expect("rewarm"), 0);
    assert_eq!(lib.store().len(), 4);

    // A warmed fleet serves the full mixed stream without a single
    // store miss on the request path.
    let fleet = Fleet::new(lib.clone(), 2, FleetConfig::default()).expect("fleet");
    let requests: Vec<Request> = (0..4)
        .map(|i| counting_request(i, (i % 2) as usize, ((i / 2) % 2) as usize, 1))
        .collect();
    let report = fleet.run(requests);
    assert_eq!(report.served, 4);
    assert_eq!(fleet.metrics().store_misses.get(), 0, "all prefetched");
    assert_eq!(fleet.metrics().store_hits.get(), 4);
}

#[test]
fn store_generates_each_partial_once_across_the_pool() {
    let lib = library();
    let fleet = Fleet::new(lib.clone(), 4, FleetConfig::default()).expect("fleet");

    // Twelve requests, all for the same (region, variant): every board
    // races to resolve it cold, but only one generation may happen.
    let requests: Vec<Request> = (0..12).map(|i| counting_request(i, 1, 1, 1)).collect();
    let report = fleet.run(requests);
    assert_eq!(report.served, 12);
    assert_eq!(fleet.metrics().store_misses.get(), 1, "generated once");
    assert_eq!(fleet.metrics().store_hits.get(), 11);
    assert_eq!(lib.store().len(), 1);
    // Four boards each downloaded it at most... once plus fast paths:
    // at least 8 of the 12 requests must have been resident fast-paths.
    assert!(fleet.metrics().resident_hits.get() >= 8);
}

#[test]
fn injected_port_faults_are_retried_to_full_success() {
    let lib = library();
    let mut fleet = Fleet::new(lib, 2, FleetConfig::default()).expect("fleet");
    fleet.inject_faults(0.4, 1234);

    let requests: Vec<Request> = (0..10)
        .map(|i| counting_request(i, (i % 2) as usize, ((i / 2) % 2) as usize, 2))
        .collect();
    let report = fleet.run(requests);
    assert_eq!(report.served, 10, "every request eventually succeeds");
    assert_eq!(report.failed, 0);
    let m = fleet.metrics();
    assert!(m.retries.get() > 0, "a 40% fault rate must force retries");
    // Drop faults surface as port errors; corrupt faults surface as
    // verify mismatches. At this rate we expect to have seen retries,
    // and every served response must have verified on its final attempt.
    for r in &report.responses {
        assert!(r.error.is_none());
    }
}

#[test]
fn fault_free_boards_never_fail_verification() {
    let lib = library();
    let mut fleet = Fleet::new(lib, 2, FleetConfig::default()).expect("fleet");
    fleet.inject_faults(0.0, 77); // explicit zero rate clears injectors

    let requests: Vec<Request> = (0..8)
        .map(|i| counting_request(i, (i % 2) as usize, ((i / 3) % 2) as usize, 1))
        .collect();
    let report = fleet.run(requests);
    assert_eq!(report.served, 8);
    assert_eq!(fleet.metrics().verify_failures.get(), 0);
    assert_eq!(fleet.metrics().retries.get(), 0);
}

#[test]
fn full_swap_mode_serves_the_same_answers_for_more_bytes() {
    let lib_p = library();
    let lib_f = library();
    let partial = Fleet::new(lib_p, 1, FleetConfig::default()).expect("fleet");
    let full = Fleet::new(
        lib_f,
        1,
        FleetConfig {
            mode: ServeMode::FullSwap,
            ..FleetConfig::default()
        },
    )
    .expect("fleet");

    let stream = || {
        vec![
            counting_request(0, 0, 0, 4),
            counting_request(1, 1, 0, 2),
            counting_request(2, 0, 1, 1),
        ]
    };
    let rp = partial.run(stream());
    let rf = full.run(stream());
    assert_eq!(rp.served, 3);
    assert_eq!(rf.served, 3);
    for (a, b) in rp.responses.iter().zip(&rf.responses) {
        assert_eq!(a.outputs, b.outputs, "mode must not change semantics");
    }
    assert!(
        full.metrics().download_bytes.get() > 2 * partial.metrics().download_bytes.get(),
        "full-bitstream swaps push far more configuration data ({} vs {})",
        full.metrics().download_bytes.get(),
        partial.metrics().download_bytes.get()
    );
    assert!(rf.makespan > rp.makespan, "and take longer on the port");
}

#[test]
fn compressed_wire_serves_the_same_answers_for_fewer_bytes() {
    let lib_p = library();
    let lib_c = library();
    let plain = Fleet::new(lib_p, 1, FleetConfig::default()).expect("fleet");
    let compressed = Fleet::new(
        lib_c,
        1,
        FleetConfig {
            wire: fleet::WireFormat::Compressed,
            ..FleetConfig::default()
        },
    )
    .expect("fleet");

    // First visits download incrementals (base-resident regions, delta
    // sections decode against the boards' own frames); the revisit of
    // (0, 0) after (0, 1) downloads a wholesale.
    let stream = || {
        vec![
            counting_request(0, 0, 0, 4),
            counting_request(1, 1, 0, 2),
            counting_request(2, 0, 1, 1),
            counting_request(3, 0, 0, 2),
        ]
    };
    let rp = plain.run(stream());
    let rc = compressed.run(stream());
    assert_eq!(rp.served, 4);
    assert_eq!(rc.served, 4);
    assert_eq!(rc.failed, 0, "compressed downloads must verify");
    for (a, b) in rp.responses.iter().zip(&rc.responses) {
        assert_eq!(
            a.outputs, b.outputs,
            "wire format must not change semantics"
        );
    }
    assert!(
        compressed.metrics().download_bytes.get() < plain.metrics().download_bytes.get(),
        "containers must be smaller than plain partials ({} vs {})",
        compressed.metrics().download_bytes.get(),
        plain.metrics().download_bytes.get()
    );
    assert!(rc.makespan < rp.makespan, "and cheaper on the port");
    assert_eq!(compressed.metrics().verify_failures.get(), 0);
}

#[test]
fn rebase_bumps_the_epoch_and_regenerates_on_demand() {
    let (base, catalogues) = fixture();
    let lib = Arc::new(ServingLibrary::build(&base, &catalogues, 90).expect("library"));
    let fleet = Fleet::new(lib.clone(), 1, FleetConfig::default()).expect("fleet");

    let r1 = fleet.run(vec![counting_request(0, 0, 1, 1)]);
    assert_eq!(r1.served, 1);
    assert_eq!(lib.epoch(), 0);
    assert_eq!(lib.store().len(), 1);

    // Rebase onto the same image: epoch moves, stored partials drop.
    assert_eq!(lib.rebase(base.memory.clone()), 1);
    assert_eq!(lib.epoch(), 1);
    assert!(lib.store().is_empty(), "old-epoch entries purged");

    // The next request regenerates against the new base and still
    // verifies on a board whose resident content predates the rebase
    // (the image is identical, so the wholesale partial composes).
    let misses_before = fleet.metrics().store_misses.get();
    let r2 = fleet.run(vec![counting_request(1, 0, 1, 1)]);
    assert_eq!(r2.served, 1);
    assert_eq!(fleet.metrics().store_misses.get(), misses_before + 1);
    assert_eq!(lib.store().len(), 1);
}

#[test]
fn bad_requests_fail_cleanly_without_poisoning_the_fleet() {
    let lib = library();
    let fleet = Fleet::new(lib, 1, FleetConfig::default()).expect("fleet");
    let report = fleet.run(vec![
        Request::new(0, 9, 0, 1), // no such region
        Request::new(1, 0, 9, 1), // no such variant
        counting_request(2, 0, 0, 3),
    ]);
    assert_eq!(report.failed, 2);
    assert_eq!(report.served, 1);
    assert!(report.responses[0]
        .error
        .as_deref()
        .unwrap_or("")
        .contains("region"));
    assert!(report.responses[1]
        .error
        .as_deref()
        .unwrap_or("")
        .contains("variant"));
    assert_eq!(bus_value(&report.responses[2].outputs, "r1/"), 3);
}
