//! The scheduler's central guarantee: virtual results are a pure
//! function of `(config, trace, seed)` — never of the worker count, the
//! OS scheduler, or wall-clock interleaving. Same seed + same trace ⇒
//! byte-identical event log, identical per-request outcomes, identical
//! final residency, identical latency histograms, on any worker count.

use fleet::sim::{simulate, FleetSimSpec, SimReport};
use fleet::{OutcomeKind, Priority};

fn spec() -> FleetSimSpec {
    FleetSimSpec {
        boards: 48,
        shards: 12,
        requests: 3_000,
        regions: 3,
        variants: 5,
        fault_rate: 0.15,
        queue_cap: 64,
        shed_watermark: 48,
        log_events: true,
        seed: 0xD15C0,
        ..FleetSimSpec::default()
    }
}

fn run_with_workers(workers: usize) -> SimReport {
    let mut s = spec();
    s.workers = workers;
    simulate(&s)
}

/// Everything the spec promises to hold fixed across worker counts.
fn fingerprint(r: &SimReport) -> (usize, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.outcomes.len(),
        r.served,
        r.failed,
        r.rejected,
        r.shed,
        r.retries,
        r.download_bytes,
        r.completed.ns(),
    )
}

#[test]
fn identical_results_at_1_2_and_8_workers() {
    let base = run_with_workers(1);
    for workers in [2, 8] {
        let other = run_with_workers(workers);
        assert_eq!(
            fingerprint(&base),
            fingerprint(&other),
            "totals diverged at {workers} workers"
        );
        assert_eq!(
            base.outcomes, other.outcomes,
            "per-request outcomes diverged at {workers} workers"
        );
        assert_eq!(
            base.resident, other.resident,
            "final board residency diverged at {workers} workers"
        );
        assert_eq!(
            base.event_log, other.event_log,
            "event log diverged at {workers} workers"
        );
        // The full metric snapshot — counters, gauges, and every latency
        // histogram bucket — is also identical: latency quantiles are a
        // pure function of the trace, not the thread schedule.
        assert_eq!(
            base.snapshot, other.snapshot,
            "metric snapshot diverged at {workers} workers"
        );
    }
}

/// The defragmenter's migrations are ordinary scheduler events, so the
/// determinism guarantee extends to them unchanged: identical event
/// logs (migration lines included), outcomes, final fragmentation and
/// metric snapshots at 1, 2 and 8 workers.
#[test]
fn defrag_runs_are_identical_across_worker_counts() {
    let defrag_spec = |workers| FleetSimSpec {
        defrag: true,
        workers,
        ..spec()
    };
    let base = simulate(&defrag_spec(1));
    assert!(base.migrations > 0, "fragmented layout must migrate");
    assert!(base.frag_initial > 0);
    assert_eq!(base.frag_final, 0, "idle windows fully compact the fleet");
    assert_eq!(base.served, 3_000, "defrag never costs a request");
    for workers in [2, 8] {
        let other = simulate(&defrag_spec(workers));
        assert_eq!(
            base.event_log, other.event_log,
            "defrag event log diverged at {workers} workers"
        );
        assert_eq!(base.outcomes, other.outcomes);
        assert_eq!(base.snapshot, other.snapshot);
        assert_eq!(
            (base.migrations, base.migration_retries, base.frag_final),
            (other.migrations, other.migration_retries, other.frag_final),
        );
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let a = run_with_workers(0); // 0 = all available cores
    let b = run_with_workers(0);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.event_log, b.event_log);
    assert_eq!(a.snapshot, b.snapshot);
}

#[test]
fn different_seeds_change_the_schedule() {
    let a = run_with_workers(1);
    let mut s = spec();
    s.seed ^= 0xBEEF;
    s.workers = 1;
    let b = simulate(&s);
    assert_ne!(a.event_log, b.event_log, "seed must drive the schedule");
}

/// Golden event-log fixture: a small seeded scenario whose merged event
/// log is pinned byte-for-byte. Regenerate deliberately with
/// `BLESS_SCHED_LOG=1 cargo test -p fleet --test sched_determinism`.
#[test]
fn event_log_matches_golden_fixture() {
    let s = FleetSimSpec {
        boards: 4,
        shards: 2,
        workers: 1,
        requests: 24,
        regions: 2,
        variants: 2,
        fault_rate: 0.25,
        log_events: true,
        seed: 7,
        ..FleetSimSpec::default()
    };
    let r = simulate(&s);
    let rendered = r.event_log.join("\n") + "\n";
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/sched_event_log.txt"
    );
    if std::env::var_os("BLESS_SCHED_LOG").is_some() {
        std::fs::write(path, &rendered).expect("bless fixture");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden fixture missing — run with BLESS_SCHED_LOG=1 to create it");
    assert_eq!(
        rendered, golden,
        "event log diverged from the golden fixture; if the scheduler \
         intentionally changed, re-bless with BLESS_SCHED_LOG=1"
    );
}

/// Metrics label cardinality tracks shards, not boards: growing the
/// fleet 16x at a fixed shard count must not add a single label set.
#[test]
fn snapshot_size_is_independent_of_board_count() {
    let small = simulate(&FleetSimSpec {
        boards: 32,
        shards: 8,
        requests: 500,
        seed: 11,
        ..FleetSimSpec::default()
    });
    let large = simulate(&FleetSimSpec {
        boards: 512,
        shards: 8,
        requests: 500,
        seed: 11,
        ..FleetSimSpec::default()
    });
    assert_eq!(
        small.snapshot.samples.len(),
        large.snapshot.samples.len(),
        "label cardinality must scale with shards, not boards"
    );
}

/// Virtual-time outcomes are internally consistent regardless of how
/// requests were classified.
#[test]
fn outcome_classification_is_exhaustive_and_typed() {
    let r = simulate(&spec());
    for o in &r.outcomes {
        match o.kind {
            OutcomeKind::Served { .. } => assert!(o.error.is_none()),
            OutcomeKind::Failed => assert!(o.error.is_some()),
            OutcomeKind::Rejected => {
                assert!(o.error.as_deref().is_some_and(|e| e.contains("queue full")))
            }
            OutcomeKind::Shed => {
                assert_eq!(o.priority, Priority::Low);
                assert!(o.error.as_deref().is_some_and(|e| e.contains("shed")));
            }
        }
    }
}
