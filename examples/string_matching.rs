//! Run-time reconfigurable string matching — the workload of the paper's
//! reference [5] (Sidhu, Mei & Prasanna, FPGA'99): the search pattern is
//! baked into the hardware, and *changing the pattern means partially
//! reconfiguring the device*, not loading a register.
//!
//! ```text
//! cargo run --example string_matching
//! ```
//!
//! A matcher region scans a bit stream for a hard-wired pattern; when the
//! host wants a new pattern, it JPGs a partial bitstream into the region
//! while the rest of the device (a packet counter) keeps running.

use cadflow::gen;
use jbits::Xhwif;
use jpg::workflow::{build_base, implement_variant, ModuleSpec};
use jpg::JpgProject;
use simboard::SimBoard;
use virtex::Device;
use xdl::{Placement, Rect};

/// The bit stream we scan (a little "network traffic").
fn traffic() -> Vec<bool> {
    let bytes = [0b1011_0010u8, 0b0110_1101, 0b1011_1011, 0b0101_1101];
    bytes
        .iter()
        .flat_map(|b| (0..8).map(move |i| (b >> i) & 1 == 1))
        .collect()
}

fn pattern_bits(p: &str) -> Vec<bool> {
    p.chars().map(|c| c == '1').collect()
}

fn main() {
    let device = Device::XCV50;
    let patterns = ["101", "1101", "0110"];

    println!(
        "Building base design: matcher for {:?} + traffic counter…",
        patterns[0]
    );
    let modules = vec![
        ModuleSpec {
            prefix: "matcher/".into(),
            netlist: gen::string_matcher("m0", &pattern_bits(patterns[0])),
            region: Rect::new(0, 1, 15, 8),
        },
        ModuleSpec {
            prefix: "counter/".into(),
            netlist: gen::counter("bits", 4),
            region: Rect::new(0, 14, 15, 21),
        },
    ];
    let base = build_base("ids", device, &modules, 77).expect("base");
    let mut project = JpgProject::open(base.bitstream.clone()).expect("open");

    let mut board = SimBoard::new(device);
    board
        .set_configuration(&base.bitstream.bitstream)
        .expect("configure");
    let design = &base.design;
    let pad = |name: &str| match design.instance(name).expect("pad").placement {
        Placement::Iob(io) => io,
        _ => panic!("{name} not a pad"),
    };
    board.set_pad(pad("counter/en"), true);

    for (k, pat) in patterns.iter().enumerate() {
        if k > 0 {
            println!("\nHost requests pattern {pat:?}: swapping the matcher region…");
            let nl = gen::string_matcher(&format!("m{k}"), &pattern_bits(pat));
            let variant =
                implement_variant(&base, "matcher/", &nl, 200 + k as u64).expect("variant");
            let partial = project
                .generate_partial(&variant.xdl, &variant.ucf)
                .expect("partial");
            project.download(&partial, &mut board).expect("download");
            project.write_onto_base(&partial).expect("merge");
            println!(
                "  partial: {} bytes over columns {:?}",
                partial.bitstream.byte_len(),
                partial.clb_columns
            );
        }
        // Scan the traffic on the board and, in lockstep, on the golden
        // netlist simulator (same stimulus, same observation protocol).
        board.reset();
        board.set_pad(pad("counter/en"), true);
        let golden_nl = gen::string_matcher("golden", &pattern_bits(pat));
        let mut golden = cadflow::Simulator::new(&golden_nl);
        let mut hw_matches = 0usize;
        let mut sw_matches = 0usize;
        let stream = traffic();
        for &bit in &stream {
            board.set_pad(pad("matcher/din"), bit);
            golden.set_input("din", bit);
            board.clock_step(1);
            golden.clock();
            let hw = board.get_pad(pad("matcher/match"));
            let sw = golden.output("match");
            assert_eq!(hw, sw, "fabric diverged from the netlist");
            hw_matches += hw as usize;
            sw_matches += sw as usize;
        }
        println!(
            "pattern {pat:>5}: hardware saw {hw_matches} matches (golden model: {sw_matches})"
        );
    }
    println!(
        "\nDone. Config traffic: {} bytes; user clocks: {}",
        board.config_bytes(),
        board.user_clocks()
    );
}
