//! JPG vs PARBIT vs JBitsDiff (paper §2.3): same module swap, three
//! tools, three very different inputs — and identical device state.
//!
//! ```text
//! cargo run --example tool_comparison
//! ```

use baselines::{diff_bitstreams, extract_partial, ParbitOptions};
use bitstream::Interpreter;
use cadflow::gen;
use jpg::workflow::{build_base, implement_variant, ModuleSpec};
use jpg::JpgProject;
use std::time::Instant;
use virtex::Device;
use xdl::Rect;

fn main() {
    let device = Device::XCV50;
    let region = Rect::new(0, 2, 15, 9);

    println!("Setting up: base design with an up-counter in columns 2..=9…");
    let base = build_base(
        "cmp",
        device,
        &[ModuleSpec {
            prefix: "mod1/".into(),
            netlist: gen::counter("up", 4),
            region,
        }],
        3,
    )
    .expect("base");
    let variant = implement_variant(&base, "mod1/", &gen::lfsr("lfsr", 4), 4).expect("variant");

    // A complete bitstream of the variant (PARBIT's and JBitsDiff's
    // required input) — produced by merging the partial onto the base.
    let mut merged = JpgProject::open(base.bitstream.clone()).expect("open");
    let p = merged
        .generate_partial(&variant.xdl, &variant.ucf)
        .expect("partial");
    merged.write_onto_base(&p).expect("merge");
    let variant_full = merged.base_bitstream().bitstream;

    println!("\n== JPG ==");
    println!(
        "inputs : module .xdl ({} bytes) + .ucf ({} bytes)",
        variant.xdl.len(),
        variant.ucf.len()
    );
    let t = Instant::now();
    let project = JpgProject::open(base.bitstream.clone()).expect("open");
    let jpg_partial = project
        .generate_partial(&variant.xdl, &variant.ucf)
        .expect("partial");
    println!(
        "output : partial of {} bytes in {:?} ({} JBits calls)",
        jpg_partial.bitstream.byte_len(),
        t.elapsed(),
        jpg_partial.stats.total()
    );

    println!("\n== PARBIT ==");
    let opts = ParbitOptions {
        start_col: region.col0 as usize,
        end_col: region.col1 as usize,
        include_iobs: false,
    };
    println!(
        "inputs : complete variant bitstream ({} bytes) + options file:\n{}",
        variant_full.byte_len(),
        opts.print()
            .lines()
            .map(|l| format!("         {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let t = Instant::now();
    let parbit_partial = extract_partial(device, &variant_full, &opts).expect("extract");
    println!(
        "output : partial of {} bytes in {:?}",
        parbit_partial.byte_len(),
        t.elapsed()
    );

    println!("\n== JBitsDiff ==");
    println!(
        "inputs : two complete bitstreams ({} + {} bytes)",
        base.bitstream.bitstream.byte_len(),
        variant_full.byte_len()
    );
    let t = Instant::now();
    let core = diff_bitstreams(device, &base.bitstream.bitstream, &variant_full).expect("diff");
    println!(
        "output : core of {} frame writes in {:?}; first lines:\n{}",
        core.frame_count(),
        t.elapsed(),
        core.to_jbits_calls()
            .lines()
            .take(3)
            .map(|l| {
                let mut s = l.to_string();
                s.truncate(70);
                format!("         {s}…")
            })
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Equivalence: all three produce the same configured device.
    let apply = |bits: &bitstream::Bitstream| {
        let mut dev = Interpreter::new(device);
        dev.feed(&base.bitstream.bitstream).unwrap();
        dev.feed(bits).unwrap();
        dev.into_memory()
    };
    let a = apply(&jpg_partial.bitstream);
    let b = apply(&parbit_partial);
    let mut c = {
        let mut dev = Interpreter::new(device);
        dev.feed(&base.bitstream.bitstream).unwrap();
        dev.into_memory()
    };
    core.replay(&mut c);
    assert_eq!(a, b);
    assert_eq!(a, c);
    println!("\nAll three tools leave the device in the identical state ✓");
}
