//! Text to silicon: the full Figure-2 flow starting from HDL source.
//!
//! ```text
//! cargo run --example hdl_flow
//! ```
//!
//! Synthesizes two PWM-style modules from HDL text, implements the first
//! as the base design, then hot-swaps the second in with a JPG partial —
//! driving everything from source code, the way the paper's designers
//! worked (minus twenty years of tool startup time).

use cadflow::synthesize;
use jbits::Xhwif;
use jpg::workflow::{build_base, implement_variant, ModuleSpec};
use jpg::JpgProject;
use simboard::SimBoard;
use virtex::Device;
use xdl::{Placement, Rect};

const PWM: &str = r#"
// Duty-cycle 4/16 pulse generator.
module pwm;
  input en;
  output out;
  reg [3:0] phase = 0;
  next phase = en ? phase + 1 : phase;
  assign out = phase[3] & phase[2];   // high 4 of 16 cycles
endmodule
"#;

const BLINK: &str = r#"
// Half-rate blinker with the same interface.
module blink;
  input en;
  output out;
  reg [3:0] phase = 0;
  next phase = en ? phase + 1 : phase;
  assign out = phase[0];
endmodule
"#;

fn main() {
    println!("Synthesizing HDL modules…");
    let pwm = synthesize(PWM).expect("pwm synthesizes");
    let blink = synthesize(BLINK).expect("blink synthesizes");
    println!(
        "  pwm: {} gates, {} FFs; blink: {} gates, {} FFs",
        pwm.gate_count(),
        pwm.dffs.len(),
        blink.gate_count(),
        blink.dffs.len()
    );

    let device = Device::XCV50;
    let base = build_base(
        "pwm_top",
        device,
        &[ModuleSpec {
            prefix: "gen/".into(),
            netlist: pwm,
            region: Rect::new(0, 2, 15, 9),
        }],
        5,
    )
    .expect("base design");
    let report = &base.reports[0];
    println!(
        "Implemented base: {} LUTs, critical path {:.1} ns ({:.0} MHz)",
        report.luts,
        report.timing.as_ref().unwrap().critical_path_ns,
        report.timing.as_ref().unwrap().max_freq_mhz
    );

    let mut board = SimBoard::new(device);
    board
        .set_configuration(&base.bitstream.bitstream)
        .expect("configure");
    let pad = |name: &str| match base.design.instance(name).expect("pad").placement {
        Placement::Iob(io) => io,
        _ => panic!("{name} not a pad"),
    };
    board.set_pad(pad("gen/en"), true);

    let sample = |board: &mut SimBoard, n: usize| -> String {
        (0..n)
            .map(|_| {
                let v = board.get_pad(pad("gen/out"));
                board.clock_step(1);
                if v {
                    '#'
                } else {
                    '.'
                }
            })
            .collect()
    };
    println!("\npwm output  : {}", sample(&mut board, 32));

    println!("Hot-swapping in the blinker…");
    let variant = implement_variant(&base, "gen/", &blink, 6).expect("variant");
    let project = JpgProject::open(base.bitstream.clone()).expect("open");
    let partial = project
        .generate_partial(&variant.xdl, &variant.ucf)
        .expect("partial");
    project
        .download_verified(&partial, &mut board)
        .expect("download");
    println!("blink output: {}", sample(&mut board, 32));
    println!(
        "\nswap cost: {} bytes of partial bitstream ({}% of full)",
        partial.bitstream.byte_len(),
        100 * partial.bitstream.byte_len() / base.bitstream.bitstream.byte_len()
    );
}
