//! Quickstart: the complete JPG workflow on one reconfigurable region.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Phase 1 builds a floorplanned base design (an up-counter in columns
//! 2–9 of an XCV50) and its complete bitstream. Phase 2 re-implements the
//! region as a down-counter. JPG turns the module's XDL + UCF into a
//! partial bitstream, which is downloaded into a live simulated board —
//! swapping the module while the device keeps running.

use cadflow::gen;
use jbits::Xhwif;
use jpg::workflow::{build_base, implement_variant, ModuleSpec};
use jpg::JpgProject;
use simboard::SimBoard;
use virtex::Device;
use xdl::{Placement, Rect};

fn main() {
    let device = Device::XCV50;

    // ---- Phase 1: the base design -------------------------------------
    println!("Phase 1: implementing the base design on {device}…");
    let modules = vec![ModuleSpec {
        prefix: "mod1/".into(),
        netlist: gen::counter("up", 4),
        region: Rect::new(0, 2, 15, 9),
    }];
    let base = build_base("quickstart", device, &modules, 1).expect("base design");
    let report = &base.reports[0];
    println!(
        "  {} LUTs, {} slices, {} nets; map {:?}, place {:?}, route {:?}",
        report.luts,
        report.slices,
        report.nets,
        report.map_time,
        report.place_time,
        report.route_time
    );
    println!(
        "  complete bitstream: {} bytes",
        base.bitstream.bitstream.byte_len()
    );

    // ---- Configure the board and run it --------------------------------
    let mut board = SimBoard::new(device);
    board
        .set_configuration(&base.bitstream.bitstream)
        .expect("configure");
    let en = pad_of(&base.design, "mod1/en");
    board.set_pad(en, true);
    board.clock_step(5);
    println!("  counter after 5 cycles: {}", read_q(&board, &base.design));

    // ---- Phase 2: re-implement the module ------------------------------
    println!("Phase 2: implementing the down-counter variant…");
    let variant =
        implement_variant(&base, "mod1/", &gen::down_counter("down", 4), 2).expect("variant");
    println!(
        "  variant XDL: {} lines, UCF: {} lines",
        variant.xdl.lines().count(),
        variant.ucf.lines().count()
    );

    // ---- JPG: partial bitstream generation -----------------------------
    println!("JPG: generating the partial bitstream…");
    let project = JpgProject::open(base.bitstream.clone()).expect("open base");
    let partial = project
        .generate_partial(&variant.xdl, &variant.ucf)
        .expect("partial");
    println!(
        "  partial covers CLB columns {:?} ({} frames, {} JBits calls)",
        partial.clb_columns,
        partial.frames,
        partial.stats.total()
    );
    println!(
        "  partial bitstream: {} bytes ({:.1}% of complete)",
        partial.bitstream.byte_len(),
        100.0 * partial.bitstream.byte_len() as f64 / base.bitstream.bitstream.byte_len() as f64
    );
    println!("\nTarget floorplan area:\n{}", partial.floorplan);

    // ---- Dynamic partial reconfiguration --------------------------------
    println!("Downloading the partial onto the running device…");
    project.download(&partial, &mut board).expect("download");
    let q0 = read_q(&board, &base.design);
    board.clock_step(1);
    let q1 = read_q(&board, &base.design);
    println!("  after swap: q = {q0}, then {q1} (counting down)");
    assert_eq!(q1, (q0 + 15) % 16, "module should now decrement");
    println!(
        "\nTotal configuration traffic: {} bytes in {:?}",
        board.config_bytes(),
        board.config_time()
    );
}

fn pad_of(design: &xdl::Design, name: &str) -> virtex::IobCoord {
    match design.instance(name).expect("pad instance").placement {
        Placement::Iob(io) => io,
        _ => panic!("{name} is not a pad"),
    }
}

fn read_q(board: &SimBoard, design: &xdl::Design) -> u64 {
    let mut v = 0;
    for i in 0..4 {
        if board.get_pad(pad_of(design, &format!("mod1/q[{i}]"))) {
            v |= 1 << i;
        }
    }
    v
}
