//! Updating on-chip memory through partial reconfiguration.
//!
//! ```text
//! cargo run --example coefficient_update
//! ```
//!
//! The companion technique to JPG in the paper's milieu ("Efficient
//! Self-Reconfigurable Implementations Using On-Chip Memory", FPL 2000):
//! a DSP design keeps its coefficient tables in block RAM, and the host
//! retargets the filter by rewriting *only the BRAM content frames* — a
//! partial bitstream two orders of magnitude smaller than the full
//! configuration, generated directly from JBits calls with no CAD flow
//! run at all.

use bitstream::Interpreter;
use jbits::{Granularity, Jbits};
use simboard::port::download_time;
use virtex::bram::Side;
use virtex::{BramCoord, Device};

/// A "filter response" table: 256 16-bit coefficients.
fn coefficients(cutoff: u16) -> [u16; 256] {
    let mut t = [0u16; 256];
    for (i, v) in t.iter_mut().enumerate() {
        *v = if (i as u16) < cutoff {
            0xFFFF >> (i % 8)
        } else {
            0
        };
    }
    t
}

fn main() {
    let device = Device::XCV100;
    println!("Baseline configuration with low-pass coefficients in {device} BRAM…");
    let bram = BramCoord::new(Side::Left, 1);

    let mut jb = Jbits::new(device);
    assert!(jb.set_bram_contents(bram, &coefficients(64)));
    let full = jb.full_bitstream();
    println!(
        "  complete bitstream: {} bytes ({:?} download)",
        full.byte_len(),
        download_time(full.byte_len())
    );

    // Device configured with the baseline.
    let mut dev = Interpreter::new(device);
    dev.feed(&full).expect("configure");

    println!("\nHost retunes the filter three times:");
    for (k, cutoff) in [96u16, 160, 32].iter().enumerate() {
        jb.clear_dirty();
        assert!(jb.set_bram_contents(bram, &coefficients(*cutoff)));
        let partial = jb.partial_bitstream(Granularity::Frame);
        dev.feed(&partial).expect("partial reconfig");
        println!(
            "  update {}: cutoff {cutoff:3} -> partial of {:5} bytes ({:.2}% of full, {:?} download)",
            k + 1,
            partial.byte_len(),
            100.0 * partial.byte_len() as f64 / full.byte_len() as f64,
            download_time(partial.byte_len()),
        );
        // Verify the device really holds the new table (readback path).
        let mut check = Jbits::from_memory(dev.memory().clone());
        assert_eq!(check.get_bram_contents(bram), Some(coefficients(*cutoff)));
    }

    println!("\nCoefficient partials rewrite only the BRAM content frames —");
    println!("the logic fabric keeps running untouched while tables change.");
}
