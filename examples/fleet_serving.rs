//! Serving partial reconfigurations from a fleet of simulated boards.
//!
//! ```text
//! cargo run --release --example fleet_serving          # Figure-4 scenario
//! cargo run --release --example fleet_serving smoke    # small + fast (CI)
//! ```
//!
//! The paper's Figure-4 library — three regions with 3, 3 and 4
//! interchangeable modules — becomes a *request stream*: "run variant V
//! in region R, step the clock, return the outputs". A [`fleet::Fleet`]
//! drains the stream across a pool of boards, generating each partial
//! bitstream exactly once (content-addressed store), scheduling requests
//! onto the board that has to rewrite the fewest frames, and verifying
//! every download by region-scoped readback. The same service in
//! full-bitstream mode shows what the conventional one-complete-bitstream-
//! per-combination flow would cost in configuration traffic.

use cadflow::gen;
use cadflow::netlist::Netlist;
use fleet::{Fleet, FleetConfig, Request, ServeMode, ServingLibrary};
use jpg::workflow::{build_base, BaseDesign, ModuleSpec};
use std::sync::Arc;
use virtex::Device;
use xdl::Rect;

/// The serving scenario: a base design, its variant catalogues, and the
/// request mix to drain.
struct Scenario {
    base: BaseDesign,
    catalogues: Vec<(String, Vec<Netlist>)>,
    boards: usize,
    requests: usize,
}

/// The paper's Figure-4 partitioning on an XCV100.
fn fig4() -> Scenario {
    let device = Device::XCV100; // 20 x 30 CLBs
    let rows = device.geometry().clb_rows as i32 - 1;
    let catalogues = vec![
        (
            "region1/".to_string(),
            vec![
                gen::counter("up", 3),
                gen::down_counter("down", 3),
                gen::gray_counter("gray", 3),
            ],
        ),
        (
            "region2/".to_string(),
            vec![
                gen::parity("par8", 8),
                gen::string_matcher("match", &[true, false, true]),
                gen::lfsr("lfsr", 4),
            ],
        ),
        (
            "region3/".to_string(),
            vec![
                gen::counter("up4", 4),
                gen::accumulator("acc", 3),
                gen::lfsr("lfsr5", 5),
                gen::gray_counter("gray4", 4),
            ],
        ),
    ];
    let rects = [
        Rect::new(0, 1, rows, 8),
        Rect::new(0, 11, rows, 18),
        Rect::new(0, 21, rows, 28),
    ];
    let modules: Vec<ModuleSpec> = catalogues
        .iter()
        .zip(rects)
        .map(|((prefix, variants), region)| ModuleSpec {
            prefix: prefix.clone(),
            netlist: variants[0].clone(),
            region,
        })
        .collect();
    let base = build_base("fig4", device, &modules, 11).expect("fig4 base design");
    Scenario {
        base,
        catalogues,
        boards: 4,
        requests: 60,
    }
}

/// A cut-down scenario for CI smoke runs: XCV50, two regions, two
/// variants each, two boards.
fn smoke() -> Scenario {
    let device = Device::XCV50;
    let rows = device.geometry().clb_rows as i32 - 1;
    let catalogues = vec![
        (
            "r1/".to_string(),
            vec![gen::counter("up", 3), gen::gray_counter("gray", 3)],
        ),
        (
            "r2/".to_string(),
            vec![gen::down_counter("down", 3), gen::lfsr("lfsr", 3)],
        ),
    ];
    let rects = [Rect::new(0, 1, rows, 4), Rect::new(0, 7, rows, 10)];
    let modules: Vec<ModuleSpec> = catalogues
        .iter()
        .zip(rects)
        .map(|((prefix, variants), region)| ModuleSpec {
            prefix: prefix.clone(),
            netlist: variants[0].clone(),
            region,
        })
        .collect();
    let base = build_base("smoke", device, &modules, 7).expect("smoke base design");
    Scenario {
        base,
        catalogues,
        boards: 2,
        requests: 12,
    }
}

/// A deterministic request mix over the library: a hot variant (every
/// third request) amid a round-robin over all (region, variant) pairs.
fn request_mix(scn: &Scenario) -> Vec<Request> {
    let pairs: Vec<(usize, usize)> = scn
        .catalogues
        .iter()
        .enumerate()
        .flat_map(|(r, (_, vs))| (0..vs.len()).map(move |v| (r, v)))
        .collect();
    (0..scn.requests as u64)
        .map(|i| {
            let (region, variant) = if i % 3 == 0 {
                pairs[0] // the hot variant
            } else {
                pairs[(i as usize * 7 + 3) % pairs.len()]
            };
            let prefix = &scn.catalogues[region].0;
            Request {
                id: i,
                region,
                variant,
                drive: vec![(format!("{prefix}en"), true)],
                reset: true,
                clocks: 1 + i % 5,
            }
        })
        .collect()
}

fn run_mode(scn: &Scenario, lib: &Arc<ServingLibrary>, mode: ServeMode) -> (f64, u64, u64) {
    let cfg = FleetConfig {
        mode,
        ..FleetConfig::default()
    };
    let fleet = Fleet::new(lib.clone(), scn.boards, cfg).expect("fleet");
    let report = fleet.run(request_mix(scn));
    assert_eq!(report.failed, 0, "fault-free serving must not fail");
    println!(
        "  {:9} mode: {} served in {:?} simulated port time -> {:.0} req/s, {} bytes pushed",
        format!("{mode:?}"),
        report.served,
        report.makespan,
        report.throughput_rps(),
        fleet.metrics().download_bytes.get(),
    );
    (
        report.throughput_rps(),
        fleet.metrics().download_bytes.get(),
        fleet.metrics().verify_failures.get(),
    )
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "smoke");
    let scn = if smoke_mode { smoke() } else { fig4() };
    let variants: usize = scn.catalogues.iter().map(|(_, v)| v.len()).sum();
    println!(
        "Library: {} regions, {} variants on {} — serving {} requests on {} boards",
        scn.catalogues.len(),
        variants,
        scn.base.memory.device(),
        scn.requests,
        scn.boards,
    );
    let lib = Arc::new(ServingLibrary::build(&scn.base, &scn.catalogues, 90).expect("library"));

    println!("\n== Partial-reconfiguration fleet vs full-bitstream fleet ==");
    let (rps_partial, bytes_partial, vf) = run_mode(&scn, &lib, ServeMode::Partial);
    assert_eq!(vf, 0, "no faults injected, no verify failures");
    let (rps_full, bytes_full, _) = run_mode(&scn, &lib, ServeMode::FullSwap);
    println!(
        "  -> partial serving: {:.2}x the throughput, {:.1}x less configuration traffic",
        rps_partial / rps_full,
        bytes_full as f64 / bytes_partial as f64,
    );

    println!("\n== Same stream with a faulty configuration port (10% fault rate) ==");
    let mut fleet = Fleet::new(lib.clone(), scn.boards, FleetConfig::default()).expect("fleet");
    fleet.inject_faults(0.10, 42);
    let report = fleet.run(request_mix(&scn));
    assert_eq!(
        report.failed, 0,
        "readback-verify + retry must recover every request"
    );
    println!(
        "  {} served, 0 failed; {} retries healed the injected faults",
        report.served,
        fleet.metrics().retries.get(),
    );
    println!("\n{}", fleet.metrics().report());
}
