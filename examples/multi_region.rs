//! The paper's Figure-4 scenario: a device partitioned into three
//! regions with 3, 3 and 4 interchangeable module implementations.
//!
//! ```text
//! cargo run --release --example multi_region
//! ```
//!
//! The conventional flow needs one *complete* bitstream per combination
//! (3 × 3 × 4 = 36); JPG needs one complete base bitstream plus one
//! *partial* per module implementation (3 + 3 + 4 = 10). This example
//! builds the JPG side for real — base + all ten partials — and
//! tabulates the bitstream economics against the (computed) conventional
//! counts.

use cadflow::gen;
use jpg::workflow::{build_base, implement_variant, ModuleSpec};
use jpg::JpgProject;
use virtex::Device;
use xdl::Rect;

fn main() {
    let device = Device::XCV100; // 20 x 30 CLBs

    // Three full-height regions, as in Figure 4.
    let regions = [
        ("region1/", Rect::new(0, 1, 19, 8)),
        ("region2/", Rect::new(0, 11, 19, 18)),
        ("region3/", Rect::new(0, 21, 19, 28)),
    ];
    // Variant catalogues: 3, 3 and 4 implementations.
    let variants1 = vec![
        gen::counter("up", 3),
        gen::down_counter("down", 3),
        gen::gray_counter("gray", 3),
    ];
    let variants2 = vec![
        gen::parity("par8", 8),
        gen::string_matcher("match", &[true, false, true]),
        gen::lfsr("lfsr", 4),
    ];
    let variants3 = vec![
        gen::counter("up", 4),
        gen::accumulator("acc", 3),
        gen::lfsr("lfsr5", 5),
        gen::gray_counter("gray4", 4),
    ];

    println!("Building the base design (first variant of each region)…");
    let modules: Vec<ModuleSpec> = vec![
        ModuleSpec {
            prefix: regions[0].0.into(),
            netlist: variants1[0].clone(),
            region: regions[0].1,
        },
        ModuleSpec {
            prefix: regions[1].0.into(),
            netlist: variants2[0].clone(),
            region: regions[1].1,
        },
        ModuleSpec {
            prefix: regions[2].0.into(),
            netlist: variants3[0].clone(),
            region: regions[2].1,
        },
    ];
    let base = build_base("fig4", device, &modules, 11).expect("base");
    let full_bytes = base.bitstream.bitstream.byte_len();
    println!("  complete base bitstream: {full_bytes} bytes");

    let project = JpgProject::open(base.bitstream.clone()).expect("open");

    println!("\nGenerating all 10 partial bitstreams…");
    let mut partial_bytes_total = 0usize;
    let mut partial_count = 0usize;
    let catalogues: [(&str, &[cadflow::Netlist]); 3] = [
        (regions[0].0, &variants1),
        (regions[1].0, &variants2),
        (regions[2].0, &variants3),
    ];
    for (prefix, variants) in catalogues {
        for (vi, nl) in variants.iter().enumerate() {
            let v = implement_variant(&base, prefix, nl, 100 + vi as u64).expect("variant");
            let partial = project.generate_partial(&v.xdl, &v.ucf).expect("partial");
            println!(
                "  {prefix}{:<8} -> {:6} bytes ({:4.1}% of complete), cols {:?}",
                nl.name,
                partial.bitstream.byte_len(),
                100.0 * partial.bitstream.byte_len() as f64 / full_bytes as f64,
                (
                    partial.clb_columns.first().copied().unwrap_or(0),
                    partial.clb_columns.last().copied().unwrap_or(0)
                ),
            );
            partial_bytes_total += partial.bitstream.byte_len();
            partial_count += 1;
        }
    }

    let combos = 3 * 3 * 4;
    println!("\n== Figure 4 economics ==");
    println!(
        "conventional flow : {combos} complete bitstreams = {} bytes",
        combos * full_bytes
    );
    println!(
        "JPG flow          : 1 complete + {partial_count} partials = {} bytes",
        full_bytes + partial_bytes_total
    );
    println!(
        "storage ratio     : {:.1}x less with JPG",
        (combos * full_bytes) as f64 / (full_bytes + partial_bytes_total) as f64
    );
    println!(
        "average partial   : {:.1}% of a complete bitstream (paper: ~a third for a third of the device)",
        100.0 * (partial_bytes_total as f64 / partial_count as f64) / full_bytes as f64
    );
}
