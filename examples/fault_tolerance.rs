//! Fault tolerance through partial reconfiguration: TMR + scrubbing.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```
//!
//! The flagship *extension* use of partial bitstreams (beyond the paper's
//! module-swap scenario): a triple-modular-redundant counter masks a
//! single-event upset in the configuration memory, the `disagree` flag
//! raises the alarm, and a JPG-style partial bitstream **scrubs** the
//! damaged region back to health while the design keeps running.

use cadflow::gen;
use jbits::{Granularity, Jbits, Xhwif};
use jpg::workflow::{build_base, ModuleSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simboard::SimBoard;
use virtex::Device;
use xdl::{Placement, Rect};

fn main() {
    let device = Device::XCV50;
    println!("Implementing a TMR counter (3 replicas + voters)…");
    let base = build_base(
        "tmr",
        device,
        &[ModuleSpec {
            prefix: "tmr/".into(),
            netlist: gen::tmr_counter("core", 4),
            region: Rect::new(0, 1, 15, 10),
        }],
        8,
    )
    .expect("base design");
    println!(
        "  {} LUTs across {} slices",
        base.reports[0].luts, base.reports[0].slices
    );

    let mut board = SimBoard::new(device);
    board
        .set_configuration(&base.bitstream.bitstream)
        .expect("configure");
    let pad = |name: &str| match base.design.instance(name).expect("pad").placement {
        Placement::Iob(io) => io,
        _ => panic!("{name} not a pad"),
    };
    let read_q = |board: &SimBoard| -> u64 {
        (0..4)
            .map(|i| (board.get_pad(pad(&format!("tmr/q[{i}]"))) as u64) << i)
            .sum()
    };
    board.set_pad(pad("tmr/en"), true);
    board.clock_step(6);
    println!(
        "  running: q = {}, disagree = {}",
        read_q(&board),
        board.get_pad(pad("tmr/disagree"))
    );

    // ---- Radiation strikes ------------------------------------------------
    // Sensitive bits = configuration bits actually in use inside the
    // module's columns (flipping an unused bit rarely shows — real SEU
    // studies report exactly this cross-section effect).
    println!("\nInjecting single-event upsets until a replica breaks…");
    let geom = base.memory.geometry().clone();
    let mut sensitive: Vec<(usize, usize)> = Vec::new();
    for col in 1..=10usize {
        let major = geom.major_for_clb_col(col).unwrap();
        let colinfo = geom.column(virtex::BlockType::Clb, major).unwrap();
        for f in colinfo.first_frame_index()..colinfo.first_frame_index() + colinfo.frame_count() {
            for bit in 0..geom.frame_bits() {
                if base.memory.get_bit(f, bit) {
                    sensitive.push((f, bit));
                }
            }
        }
    }
    println!(
        "  {} sensitive configuration bits in the region",
        sensitive.len()
    );
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut upsets = 0;
    loop {
        let (frame, bit) = sensitive[rng.gen_range(0..sensitive.len())];
        if !board.inject_upset(frame, bit) {
            continue; // the flip would create contention — skipped
        }
        upsets += 1;
        board.clock_step(1);
        if board.get_pad(pad("tmr/disagree")) {
            println!("  upset #{upsets} broke a replica (frame {frame}, bit {bit})");
            break;
        }
        if upsets > 200 {
            println!("  {upsets} upsets absorbed without visible damage — lucky run");
            break;
        }
    }

    // The voter still reports the right count.
    let q_before = read_q(&board);
    board.clock_step(4);
    let q_after = read_q(&board);
    println!(
        "  voted output still counts: {} -> {} (masked by TMR)",
        q_before, q_after
    );
    assert_eq!(
        q_after,
        (q_before + 4) % 16,
        "voter failed to mask the upset"
    );

    // ---- Scrub ------------------------------------------------------------
    println!("\nScrubbing the region with a partial bitstream…");
    let mut jb = Jbits::from_memory(base.memory.clone());
    jb.clear_dirty();
    // Mark the whole module region dirty by re-touching its columns.
    for col in 1..=10usize {
        let major = geom.major_for_clb_col(col).unwrap();
        let colinfo = geom.column(virtex::BlockType::Clb, major).unwrap();
        for f in colinfo.first_frame_index()..colinfo.first_frame_index() + colinfo.frame_count() {
            jb.mark_frame_dirty(f);
        }
    }
    let scrub = jb.partial_bitstream(Granularity::Frame);
    println!(
        "  scrub partial: {} bytes ({:.0}µs download)",
        scrub.byte_len(),
        simboard::port::download_time(scrub.byte_len()).as_micros()
    );
    board.set_configuration(&scrub).expect("scrub");
    board.clock_step(2);
    assert!(
        !board.get_pad(pad("tmr/disagree")),
        "replica still broken after scrub"
    );
    println!(
        "  disagree = {} — replica repaired, q = {}",
        board.get_pad(pad("tmr/disagree")),
        read_q(&board)
    );
    println!("\nTMR masked the fault; the partial bitstream healed it. ({upsets} upsets injected)");
}
