//! Offline stand-in for `rayon`, covering the API surface this workspace
//! uses: `par_iter` / `into_par_iter`, `map`, `enumerate`, and `collect`
//! into `Vec<T>` or `Result<Vec<T>, E>`.
//!
//! Work is executed on `std::thread::scope` threads, one per available
//! core (capped by item count), pulling items from a shared atomic
//! cursor so uneven per-item cost still balances. Results are reassembled
//! **in input order**, matching rayon's `collect` semantics — callers can
//! rely on deterministic output regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

pub mod prelude {
    //! The traits a `use rayon::prelude::*` is expected to bring in.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Number of worker threads to use for `len` items.
fn workers_for(len: usize) -> usize {
    current_num_threads().min(len).max(1)
}

/// Size of the (implicit) worker pool — one thread per available core.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Apply `f` to every item, in parallel, preserving input order.
fn parallel_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers_for(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let slots = &slots;
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken once");
                let _ = tx.send((i, f(item)));
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// A parallel iterator: a chain of adapters over a materialized item list.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Execute the chain and return the items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Parallel map.
    fn map<R, F>(self, f: F) -> MapPar<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        MapPar { base: self, f }
    }

    /// Pair every item with its input index.
    fn enumerate(self) -> EnumeratePar<Self> {
        EnumeratePar { base: self }
    }

    /// Collect into `Vec<T>` or `Result<Vec<T>, E>`.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_vec(self.drive())
    }
}

/// Base parallel iterator over owned items.
pub struct IntoIterPar<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoIterPar<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// The `map` adapter — this is where the threads actually run.
pub struct MapPar<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for MapPar<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn drive(self) -> Vec<R> {
        parallel_map(self.base.drive(), self.f)
    }
}

/// The `enumerate` adapter.
pub struct EnumeratePar<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for EnumeratePar<B> {
    type Item = (usize, B::Item);
    fn drive(self) -> Vec<(usize, B::Item)> {
        self.base.drive().into_iter().enumerate().collect()
    }
}

/// `into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoIterPar<T>;
    fn into_par_iter(self) -> IntoIterPar<T> {
        IntoIterPar { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = IntoIterPar<T>;
    fn into_par_iter(self) -> IntoIterPar<T> {
        IntoIterPar {
            items: self.collect(),
        }
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IntoIterPar<&'a T>;
    fn par_iter(&'a self) -> IntoIterPar<&'a T> {
        IntoIterPar {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IntoIterPar<&'a T>;
    fn par_iter(&'a self) -> IntoIterPar<&'a T> {
        IntoIterPar {
            items: self.iter().collect(),
        }
    }
}

/// `collect()` targets.
pub trait FromParallelIterator<T>: Sized {
    /// Build the collection from in-order results.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Vec<T> {
        v
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_vec(v: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
        v.into_iter().collect()
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if workers_for(2) < 2 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_then_map() {
        let v = vec!["a", "b", "c"];
        let out: Vec<String> = v
            .par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn result_collect_short_circuits_to_first_error() {
        let v: Vec<usize> = (0..10).collect();
        let out: Result<Vec<usize>, String> = v
            .par_iter()
            .map(|&x| {
                if x == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(out, Err("seven".to_string()));
    }
}
