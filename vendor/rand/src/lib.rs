//! Offline stand-in for `rand` 0.8, covering the API surface this
//! workspace uses: `StdRng::seed_from_u64`, `gen_range` over integer and
//! float ranges, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the CAD flow needs (its
//! seeds select reproducible placements, not cryptographic randomness).

use std::ops::{Range, RangeInclusive};

/// Core generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling convenience layer.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform f64 in [0, 1).
fn sample_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + sample_unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Named generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
