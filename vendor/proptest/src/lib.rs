//! Offline stand-in for `proptest`, covering the surface this workspace
//! uses: the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, integer/float range
//! strategies, `any::<T>()`, tuple strategies, `collection::vec`, and a
//! character-class subset of the string regex strategies
//! (`"[a-z0-9]{0,12}"`-style patterns).
//!
//! Differences from real proptest: no shrinking (failures report the
//! generated inputs via the panic message only) and a fixed per-test
//! deterministic seed derived from the test name, so runs are
//! reproducible offline.

use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite fast
        // while still exercising the property space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name, so every test has its own stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// String strategies from a `[class]{lo,hi}` pattern (regex subset).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

/// Parse `[chars]{lo,hi}` into (alphabet, lo, hi). Supports `a-z` ranges
/// inside the class; `-` first or last is literal.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = counts.0.trim().parse().ok()?;
    let hi: usize = counts.1.trim().parse().ok()?;
    if hi < lo {
        return None;
    }
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            if a > b {
                return None;
            }
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` (exclusive upper
    /// bound, matching `proptest::collection::vec(s, 0..200)` usage).
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Build a vec strategy.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.below(span);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! What `use proptest::prelude::*` is expected to provide.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property (panics with the case's inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declare property tests. Supports `name in strategy` and `name: Type`
/// parameter forms and an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($params:tt)* ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                // A closure per case so prop_assume! can early-return
                // without aborting the remaining cases.
                let mut __one_case = || {
                    $crate::__proptest_bind! { __rng, ($($params)*), $body }
                };
                __one_case();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, (), $body:block) => { $body };
    ($rng:ident, ($p:ident in $s:expr), $body:block) => {
        let $p = $crate::Strategy::sample(&($s), &mut $rng);
        $body
    };
    ($rng:ident, ($p:ident in $s:expr, $($rest:tt)*), $body:block) => {
        let $p = $crate::Strategy::sample(&($s), &mut $rng);
        $crate::__proptest_bind! { $rng, ($($rest)*), $body }
    };
    ($rng:ident, ($p:ident : $t:ty), $body:block) => {
        let $p = $crate::Strategy::sample(&$crate::any::<$t>(), &mut $rng);
        $body
    };
    ($rng:ident, ($p:ident : $t:ty, $($rest:tt)*), $body:block) => {
        let $p = $crate::Strategy::sample(&$crate::any::<$t>(), &mut $rng);
        $crate::__proptest_bind! { $rng, ($($rest)*), $body }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn typed_params_work(v: u16) {
            let _ = v;
        }

        #[test]
        fn mixed_params_and_assume(a in 0usize..10, b: u8) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
            let _ = b;
        }

        #[test]
        fn vec_and_tuple_strategies(
            pairs in crate::collection::vec((0u8..6, any::<u16>()), 1..40)
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 40);
            prop_assert!(pairs.iter().all(|&(k, _)| k < 6));
        }

        #[test]
        fn string_class_patterns(s in "[a-z/0-9]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit() || c == '/'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_applies(x in 0u32..1000) {
            let _ = x;
        }
    }

    #[test]
    fn printable_ascii_class_parses() {
        let (chars, lo, hi) = super::parse_class_pattern("[ -~\n\"]{0,300}").unwrap();
        assert_eq!((lo, hi), (0, 300));
        assert!(chars.contains(&'A') && chars.contains(&'\n') && chars.contains(&'"'));
    }

    #[test]
    fn trailing_dash_is_literal() {
        let (chars, _, _) = super::parse_class_pattern("[A-Z0-9_/.-]{0,40}").unwrap();
        assert!(chars.contains(&'-') && chars.contains(&'Q') && chars.contains(&'.'));
    }
}
