//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! This workspace builds in a fully offline container, so the real serde
//! cannot be fetched. Nothing in the codebase actually serializes at run
//! time — the derives exist so the data model is serde-ready — therefore
//! a derive that accepts the syntax and emits no impls is sufficient.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and emit nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and emit nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
