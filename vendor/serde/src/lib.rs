//! Offline stand-in for the `serde` facade.
//!
//! Provides the `Serialize` / `Deserialize` trait names (empty markers)
//! and re-exports the no-op derive macros, so `use serde::{Deserialize,
//! Serialize}` plus `#[derive(Serialize, Deserialize)]` compile unchanged
//! in an offline container. No code in this workspace performs actual
//! serialization, so no methods are needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
