//! Offline stand-in for `criterion`, covering the harness surface this
//! workspace's benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function`, `benchmark_group` with `sample_size`,
//! `throughput`, `bench_with_input`, `BenchmarkId`, and `black_box`.
//!
//! Timing is a plain best-of-N wall-clock measurement (one warm-up run,
//! then `samples` timed runs, minimum reported). No statistics, plots or
//! baselines — good enough to print comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 10;

/// Format a duration for the report line.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Run one benchmark closure `samples` times and report the best run.
fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        best: None,
        samples,
    };
    f(&mut b);
    match b.best {
        Some(best) => println!("bench {label:<48} {}", fmt_duration(best)),
        None => println!("bench {label:<48} (no iter call)"),
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    best: Option<Duration>,
    samples: usize,
}

impl Bencher {
    /// Time `f`, keeping the fastest of the configured samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            if self.best.map_or(true, |b| dt < b) {
                self.best = Some(dt);
            }
        }
    }

    /// Time `f` on a fresh `setup()` input per sample; setup is untimed.
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(f(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            let dt = t0.elapsed();
            if self.best.map_or(true, |b| dt < b) {
                self.best = Some(dt);
            }
        }
    }
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation (accepted, recorded, not rendered).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirror criterion's CLI-configuration hook (no-op offline).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, DEFAULT_SAMPLES, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Record the throughput of following benchmarks (no-op offline).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        run_bench(&label, self.samples, f);
        self
    }

    /// Run a parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, self.samples, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a group function that runs each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::new("x", 3), &7usize, |b, &v| b.iter(|| v * 2));
        g.finish();
    }
}
