//! Workspace root crate. Holds the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`; the actual library
//! code lives in the `crates/` members, re-exported here for convenience.

pub use baselines;
pub use bitstream;
pub use cadflow;
pub use jbits;
pub use jpg;
pub use simboard;
pub use virtex;
pub use xdl;
